//! Dragonfly topology: fully-connected groups joined by global links.
//!
//! The canonical parameterization (Kim/Dally/Scott/Abts) is `(a, p, h)`:
//! `a` routers per group, `p` terminals per router, `h` global links per
//! router. A *balanced* dragonfly has `g = a·h + 1` groups so that every
//! pair of groups is joined by exactly one global link. Smaller machines
//! keep the same shape with a `groups` override (`2 ≤ g ≤ a·h + 1`); the
//! global ports left unused by a smaller group count simply stay free and
//! serve as extra terminal ports.
//!
//! Global wiring uses a relative-offset scheme: endpoint `e ∈ 0..g-1` of
//! group `G` reaches group `(G + e + 1) mod g`, and the matching endpoint
//! on the far side is `g - e - 2 mod g`. Endpoint `e` lives on router
//! `e / h` of its group, so each router carries at most `h` global links.
//! Every group pair is joined by exactly one global link, which is what the
//! group-minimal routing in `crate::routing` relies on.

use super::{NodeId, Topology, TopologyError};

/// Parameters of a dragonfly fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dragonfly {
    /// Routers per group (`a`), fully connected inside the group.
    pub routers_per_group: u16,
    /// Terminal (NI) ports per router (`p`).
    pub terminals_per_router: u16,
    /// Global links per router (`h`).
    pub globals_per_router: u16,
    /// Number of groups (`g`); `a·h + 1` when balanced.
    pub groups: u16,
}

impl Dragonfly {
    /// The balanced dragonfly: `g = a·h + 1` groups.
    ///
    /// # Panics
    ///
    /// Panics if any of `a`, `p`, `h` is zero or the shape overflows the
    /// node/port budget.
    pub fn balanced(a: u16, p: u16, h: u16) -> Self {
        Dragonfly::with_groups(a, p, h, a * h + 1)
    }

    /// A dragonfly with an explicit group count `2 ≤ g ≤ a·h + 1`.
    ///
    /// # Panics
    ///
    /// Panics if a parameter is zero, the group count is out of range, or
    /// the shape overflows the node/port budget.
    pub fn with_groups(a: u16, p: u16, h: u16, groups: u16) -> Self {
        assert!(a > 0 && p > 0 && h > 0, "dragonfly parameters must be positive");
        assert!(groups >= 2, "a dragonfly needs at least two groups");
        assert!(
            u32::from(groups) - 1 <= u32::from(a) * u32::from(h),
            "group count {groups} exceeds the a*h+1 global-link budget"
        );
        let shape = Dragonfly {
            routers_per_group: a,
            terminals_per_router: p,
            globals_per_router: h,
            groups,
        };
        assert!(shape.nodes() <= usize::from(u16::MAX) + 1, "node ids are u16");
        assert!(
            usize::from(a - 1) + usize::from(h) + usize::from(p) <= usize::from(u8::MAX),
            "dragonfly port count overflows the u8 port id"
        );
        shape
    }

    /// Total router count `g · a`.
    pub fn nodes(&self) -> usize {
        usize::from(self.groups) * usize::from(self.routers_per_group)
    }

    /// Ports per router: `a - 1` local + `h` global + `p` terminal.
    pub fn ports_per_node(&self) -> u8 {
        (self.routers_per_group - 1 + self.globals_per_router + self.terminals_per_router) as u8
    }

    /// The group a router belongs to.
    pub fn group_of(&self, node: NodeId) -> usize {
        node.index() / usize::from(self.routers_per_group)
    }

    /// Router `slot` within `group`.
    pub fn router(&self, group: usize, slot: usize) -> NodeId {
        NodeId((group * usize::from(self.routers_per_group) + slot) as u16)
    }

    /// Intra-group (local) link count: `g · a(a-1)/2`.
    pub fn local_links(&self) -> usize {
        let a = usize::from(self.routers_per_group);
        usize::from(self.groups) * a * (a - 1) / 2
    }

    /// Global link count: one per group pair, `g(g-1)/2`.
    pub fn global_links(&self) -> usize {
        let g = usize::from(self.groups);
        g * (g - 1) / 2
    }

    /// Closed-form diameter bound: local, global, local.
    pub fn diameter_bound(&self) -> usize {
        if self.groups > 1 {
            3
        } else {
            1
        }
    }

    /// The routers carrying the single global link between two distinct
    /// groups, as `(router in ga, router in gb)`.
    ///
    /// Inverse of the wiring scheme: the relative offset from `ga` to `gb`
    /// is `e + 1`, so the endpoint index is `e = (gb - ga - 1) mod g` and
    /// the far endpoint is `g - e - 2 mod g`.
    pub fn global_endpoints(&self, ga: usize, gb: usize) -> (NodeId, NodeId) {
        let g = usize::from(self.groups);
        let h = usize::from(self.globals_per_router);
        debug_assert!(ga != gb && ga < g && gb < g);
        let e = (gb + g - ga - 1) % g;
        let e_far = (g + g - e - 2) % g;
        (self.router(ga, e / h), self.router(gb, e_far / h))
    }

    /// Wires the dragonfly. Local links first (so each router's low ports
    /// are intra-group), then global links, leaving terminal ports free.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if the wiring plan asks for a duplicate
    /// or over-budget link; unreachable for valid parameters.
    pub fn build(&self) -> Result<Topology, TopologyError> {
        let a = usize::from(self.routers_per_group);
        let g = usize::from(self.groups);
        let mut t = Topology::new(self.nodes(), self.ports_per_node());
        // Fully-connected groups.
        for group in 0..g {
            for i in 0..a {
                for j in (i + 1)..a {
                    t.connect_next_free(self.router(group, i), self.router(group, j))?;
                }
            }
        }
        // One global link per group pair, each wired once from the
        // lower-numbered group.
        for ga in 0..g {
            for gb in (ga + 1)..g {
                let (na, nb) = self.global_endpoints(ga, gb);
                t.connect_next_free(na, nb)?;
            }
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_shape_counts() {
        let d = Dragonfly::balanced(4, 1, 1);
        assert_eq!(d.groups, 5);
        assert_eq!(d.nodes(), 20);
        let t = d.build().expect("wires fit");
        assert!(t.is_connected());
        assert_eq!(t.wires().len(), d.local_links() + d.global_links());
        // Every router: a-1 = 3 local + 1 global = degree 4, one NI port.
        for n in 0..20 {
            assert_eq!(t.degree(NodeId(n)), 4);
            assert!(t.terminal_port(NodeId(n)).is_some());
        }
    }

    #[test]
    fn endpoints_agree_with_wiring() {
        let d = Dragonfly::balanced(4, 1, 2);
        let t = d.build().expect("wires fit");
        for ga in 0..usize::from(d.groups) {
            for gb in 0..usize::from(d.groups) {
                if ga == gb {
                    continue;
                }
                let (na, nb) = d.global_endpoints(ga, gb);
                assert_eq!(d.group_of(na), ga);
                assert_eq!(d.group_of(nb), gb);
                assert!(t.linked(na, nb), "groups {ga},{gb}");
                let (nb2, na2) = d.global_endpoints(gb, ga);
                assert_eq!((na, nb), (na2, nb2), "endpoint lookup is symmetric");
            }
        }
    }

    #[test]
    fn reduced_group_count_builds() {
        let d = Dragonfly::with_groups(16, 1, 1, 16);
        assert_eq!(d.nodes(), 256);
        let t = d.build().expect("wires fit");
        assert!(t.is_connected());
        assert_eq!(t.wires().len(), d.local_links() + d.global_links());
    }
}
