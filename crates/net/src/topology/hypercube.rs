//! Binary hypercube topology: `2^dim` routers, one link per differing
//! address bit. Dimension-order routing (`crate::routing`) fixes bits from
//! least to most significant, which is loop-free with a single VC class.

use super::{NodeId, Topology, TopologyError};

/// Parameters of a binary hypercube.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypercube {
    /// Number of dimensions; `2^dim` routers.
    pub dim: u32,
    /// Terminal (NI) ports per router.
    pub terminals_per_router: u16,
}

impl Hypercube {
    /// A hypercube of `dim` dimensions with one terminal port per router.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or the shape overflows the node/port budget.
    pub fn new(dim: u32) -> Self {
        Hypercube::with_terminals(dim, 1)
    }

    /// A hypercube with an explicit terminal-port count.
    ///
    /// # Panics
    ///
    /// Panics if a parameter is zero or the shape overflows the node/port
    /// budget.
    pub fn with_terminals(dim: u32, terminals_per_router: u16) -> Self {
        assert!(dim > 0 && terminals_per_router > 0, "hypercube parameters must be positive");
        assert!(dim <= 16, "node ids are u16: dim <= 16");
        assert!(
            dim as usize + usize::from(terminals_per_router) <= usize::from(u8::MAX),
            "hypercube port count overflows the u8 port id"
        );
        Hypercube { dim, terminals_per_router }
    }

    /// Total router count `2^dim`.
    pub fn nodes(&self) -> usize {
        1usize << self.dim
    }

    /// Ports per router: `dim` links plus the terminal ports.
    pub fn ports_per_node(&self) -> u8 {
        (self.dim as u16 + self.terminals_per_router) as u8
    }

    /// Link count `dim · 2^(dim-1)`.
    pub fn links(&self) -> usize {
        (self.dim as usize) << (self.dim - 1)
    }

    /// Closed-form diameter: `dim` (Hamming distance of the corners).
    pub fn diameter_bound(&self) -> usize {
        self.dim as usize
    }

    /// Wires the hypercube: node `n` links to `n ^ (1 << b)` for every bit.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if the wiring plan asks for a duplicate
    /// or over-budget link; unreachable for valid parameters.
    pub fn build(&self) -> Result<Topology, TopologyError> {
        let mut t = Topology::new(self.nodes(), self.ports_per_node());
        for n in 0..self.nodes() {
            for b in 0..self.dim {
                let m = n ^ (1usize << b);
                if n < m {
                    t.connect_next_free(NodeId(n as u16), NodeId(m as u16))?;
                }
            }
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_shape_counts() {
        let c = Hypercube::new(4);
        assert_eq!(c.nodes(), 16);
        assert_eq!(c.links(), 32);
        let t = c.build().expect("wires fit");
        assert!(t.is_connected());
        assert_eq!(t.wires().len(), 32);
        for n in 0..16 {
            assert_eq!(t.degree(NodeId(n)), 4);
            assert!(t.terminal_port(NodeId(n)).is_some());
        }
        // Opposite corners sit diameter apart.
        assert_eq!(t.distances_from(NodeId(0))[15], 4);
    }
}
