//! Network topologies.
//!
//! The MMR targets clusters and LANs, which often have *irregular*
//! topologies (§3.5 cites the adaptive routing of Silla & Duato for
//! "wormhole networks with irregular topology"). This module builds the
//! standard regular shapes (2D mesh, 2D torus, ring) plus connected random
//! irregular graphs, and assigns router ports: each node's low-numbered
//! ports are wired to neighbours, the remainder serve as network-interface
//! (terminal) ports.
//!
//! The HPC-scale shapes live in submodules and share the same `Topology`
//! representation: [`Dragonfly`] (fully-connected groups joined by global
//! links), [`Butterfly`] (k-ary n-fly multistage) and [`Hypercube`]. Each
//! exposes a parameter struct whose `build()` wires the fabric through
//! [`Topology::connect_next_free`], plus closed-form node/link/diameter
//! figures that the property-test wall checks against the built graph.

use mmr_core::ids::PortId;
use mmr_sim::SeededRng;

mod dragonfly;
mod hypercube;
mod multistage;

pub use dragonfly::Dragonfly;
pub use hypercube::Hypercube;
pub use multistage::Butterfly;

/// A node (router) index in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Errors from wiring a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// Every port of the node is already wired — the requested shape needs
    /// more ports per router.
    NoFreePort {
        /// The saturated node.
        node: NodeId,
    },
    /// The two nodes are already joined by a direct wire; the regular
    /// builders never need parallel links, so asking for one is a bug in
    /// the caller's wiring plan.
    DuplicateLink {
        /// First endpoint of the existing link.
        a: NodeId,
        /// Second endpoint of the existing link.
        b: NodeId,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::NoFreePort { node } => {
                write!(f, "node {node} has no free port; increase ports_per_node")
            }
            TopologyError::DuplicateLink { a, b } => {
                write!(f, "nodes {a} and {b} are already linked")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// One endpoint-to-endpoint wire between two router ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wire {
    /// First endpoint.
    pub a: (NodeId, PortId),
    /// Second endpoint.
    pub b: (NodeId, PortId),
}

/// An undirected multigraph of routers with port assignments.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: usize,
    ports_per_node: u8,
    wires: Vec<Wire>,
    /// peer\[node\]\[port\] = Some((peer node, peer port)).
    peer: Vec<Vec<Option<(NodeId, PortId)>>>,
}

impl Topology {
    /// Creates an edgeless topology of `nodes` routers with `ports_per_node`
    /// ports each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(nodes: usize, ports_per_node: u8) -> Self {
        // mmr-lint: allow(P-TRANS, reason="construction-time topology validation; unreachable from the per-cycle path")
        assert!(nodes > 0, "need at least one node");
        assert!(ports_per_node > 0, "routers need ports"); // mmr-lint: allow(P-TRANS, reason="construction-time topology validation; unreachable from the per-cycle path")
        Topology {
            nodes,
            ports_per_node,
            wires: Vec::new(),
            peer: vec![vec![None; usize::from(ports_per_node)]; nodes],
        }
    }

    /// Number of routers.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Ports per router.
    pub fn ports_per_node(&self) -> u8 {
        self.ports_per_node
    }

    /// All wires.
    pub fn wires(&self) -> &[Wire] {
        &self.wires
    }

    /// Connects two free ports with a wire.
    ///
    /// # Panics
    ///
    /// Panics if a port is out of range or already wired, or on self-loops
    /// at the same port.
    pub fn connect(&mut self, a: (NodeId, PortId), b: (NodeId, PortId)) {
        // mmr-lint: allow(P-TRANS, reason="construction-time topology validation; unreachable from the per-cycle path")
        assert!(a != b, "cannot wire a port to itself");
        for &(n, p) in &[a, b] {
            assert!(n.index() < self.nodes, "node {n} out of range"); // mmr-lint: allow(P-TRANS, reason="construction-time topology validation; unreachable from the per-cycle path")
            assert!(p.index() < usize::from(self.ports_per_node), "port {p} out of range"); // mmr-lint: allow(P-TRANS, reason="construction-time topology validation; unreachable from the per-cycle path")
            assert!(self.peer[n.index()][p.index()].is_none(), "port {n}.{p} already wired"); // mmr-lint: allow(P-TRANS, reason="construction-time topology validation; unreachable from the per-cycle path")
        }
        self.peer[a.0.index()][a.1.index()] = Some(b); // mmr-lint: allow(P-TRANS, reason="both ports were just bounds-asserted against the fixed dimensions")
        self.peer[b.0.index()][b.1.index()] = Some(a); // mmr-lint: allow(P-TRANS, reason="both ports were just bounds-asserted against the fixed dimensions")
        self.wires.push(Wire { a, b });
    }

    /// The peer of a port, if wired (`None` = terminal / NI port).
    pub fn peer_of(&self, node: NodeId, port: PortId) -> Option<(NodeId, PortId)> {
        // mmr-lint: allow(P-TRANS, reason="the peer tables are fully sized at construction; node/port ids are validated at wiring time")
        self.peer[node.index()][port.index()]
    }

    /// Whether a port is a terminal (network-interface) port.
    pub fn is_terminal(&self, node: NodeId, port: PortId) -> bool {
        self.peer_of(node, port).is_none()
    }

    /// The first terminal port of a node, if any.
    pub fn terminal_port(&self, node: NodeId) -> Option<PortId> {
        (0..self.ports_per_node).map(PortId).find(|&p| self.is_terminal(node, p))
    }

    /// Neighbours of a node without materializing a list: the allocation-free
    /// form used on per-packet paths (routing, reconvergence sweeps).
    pub fn neighbors_iter(
        &self,
        node: NodeId,
    ) -> impl Iterator<Item = (PortId, NodeId, PortId)> + '_ {
        (0..self.ports_per_node).filter_map(move |p| {
            let port = PortId(p);
            self.peer_of(node, port).map(|(n, pp)| (port, n, pp))
        })
    }

    /// Neighbours of a node: (local port, peer node, peer port).
    pub fn neighbors(&self, node: NodeId) -> Vec<(PortId, NodeId, PortId)> {
        // mmr-lint: allow(A-TRANS, reason="materialized neighbor lists are control-plane only (setup probes, topology construction); per-packet routing uses neighbors_iter")
        self.neighbors_iter(node).collect()
    }

    /// Router degree (wired ports) of a node.
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors_iter(node).count()
    }

    /// Whether a direct wire already joins `a` and `b`.
    pub fn linked(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors_iter(a).any(|(_, peer, _)| peer == b)
    }

    /// Whether the graph is connected (ignoring isolated terminal ports).
    pub fn is_connected(&self) -> bool {
        if self.nodes <= 1 {
            return true;
        }
        let mut seen = vec![false; self.nodes];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        while let Some(n) = stack.pop() {
            for (_, peer, _) in self.neighbors_iter(n) {
                if !std::mem::replace(&mut seen[peer.index()], true) {
                    stack.push(peer);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// BFS hop distances from `from` to every node (`usize::MAX` if
    /// unreachable).
    pub fn distances_from(&self, from: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.nodes];
        // mmr-lint: allow(P-TRANS, reason="dist was just sized to the node count; from is a valid node id")
        dist[from.index()] = 0;
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            for (_, peer, _) in self.neighbors_iter(n) {
                if dist[peer.index()] == usize::MAX { // mmr-lint: allow(P-TRANS, reason="dist is sized to the node count; peer ids come from the wired topology")
                    dist[peer.index()] = dist[n.index()] + 1; // mmr-lint: allow(P-TRANS, reason="dist is sized to the node count; peer ids come from the wired topology")
                    queue.push_back(peer);
                }
            }
        }
        dist
    }

    /// The lowest-numbered unwired port of a node.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoFreePort`] if every port is wired.
    pub fn next_free_port(&self, node: NodeId) -> Result<PortId, TopologyError> {
        (0..self.ports_per_node)
            .map(PortId)
            .find(|&p| self.peer_of(node, p).is_none())
            .ok_or(TopologyError::NoFreePort { node })
    }

    /// Wires the next free port of `a` to the next free port of `b`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DuplicateLink`] if the nodes are already
    /// directly linked and [`TopologyError::NoFreePort`] if either node has
    /// no port left; the topology is unchanged in either case. Parallel
    /// links remain expressible through [`Topology::connect`] with explicit
    /// ports.
    pub fn connect_next_free(&mut self, a: NodeId, b: NodeId) -> Result<(), TopologyError> {
        if self.linked(a, b) {
            return Err(TopologyError::DuplicateLink { a, b });
        }
        let pa = self.next_free_port(a)?;
        let pb = self.next_free_port(b)?;
        self.connect((a, pa), (b, pb));
        Ok(())
    }

    /// A `width × height` 2D mesh. Each router needs at least 4 + 1 ports
    /// (4 directions plus a terminal).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoFreePort`] if a router runs out of ports
    /// while wiring.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are zero or `ports_per_node < 5`.
    pub fn mesh2d(width: usize, height: usize, ports_per_node: u8) -> Result<Self, TopologyError> {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        assert!(ports_per_node >= 5, "a 2D mesh router needs >= 5 ports");
        let mut t = Topology::new(width * height, ports_per_node);
        let id = |x: usize, y: usize| NodeId((y * width + x) as u16);
        for y in 0..height {
            for x in 0..width {
                if x + 1 < width {
                    t.connect_next_free(id(x, y), id(x + 1, y))?;
                }
                if y + 1 < height {
                    t.connect_next_free(id(x, y), id(x, y + 1))?;
                }
            }
        }
        Ok(t)
    }

    /// A `width × height` 2D torus (wrap-around mesh). Degenerate dimensions
    /// of size 1 or 2 fall back to single links instead of double wires.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoFreePort`] if a router runs out of ports
    /// while wiring.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are zero or `ports_per_node < 5`.
    pub fn torus2d(width: usize, height: usize, ports_per_node: u8) -> Result<Self, TopologyError> {
        assert!(width > 0 && height > 0, "torus dimensions must be positive");
        assert!(ports_per_node >= 5, "a 2D torus router needs >= 5 ports");
        let mut t = Topology::new(width * height, ports_per_node);
        let id = |x: usize, y: usize| NodeId((y * width + x) as u16);
        for y in 0..height {
            for x in 0..width {
                if width > 1 && (x + 1 < width || width > 2) {
                    t.connect_next_free(id(x, y), id((x + 1) % width, y))?;
                }
                if height > 1 && (y + 1 < height || height > 2) {
                    t.connect_next_free(id(x, y), id(x, (y + 1) % height))?;
                }
            }
        }
        Ok(t)
    }

    /// A ring of `nodes` routers.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoFreePort`] if a router runs out of ports
    /// while wiring.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 3` or `ports_per_node < 3`.
    pub fn ring(nodes: usize, ports_per_node: u8) -> Result<Self, TopologyError> {
        assert!(nodes >= 3, "a ring needs at least three nodes");
        assert!(ports_per_node >= 3, "a ring router needs >= 3 ports");
        let mut t = Topology::new(nodes, ports_per_node);
        for n in 0..nodes {
            t.connect_next_free(NodeId(n as u16), NodeId(((n + 1) % nodes) as u16))?;
        }
        Ok(t)
    }

    /// A connected random irregular topology: a random spanning tree plus
    /// `extra_links` random additional links, degree-bounded so every node
    /// keeps at least one terminal port.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoFreePort`] if a router runs out of ports
    /// while wiring (the degree bound makes this unreachable in practice).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or `ports_per_node < 3`.
    pub fn irregular(
        nodes: usize,
        ports_per_node: u8,
        extra_links: usize,
        rng: &mut SeededRng,
    ) -> Result<Self, TopologyError> {
        assert!(nodes > 0, "need at least one node");
        assert!(ports_per_node >= 3, "irregular routers need >= 3 ports");
        let mut t = Topology::new(nodes, ports_per_node);
        let max_degree = usize::from(ports_per_node) - 1; // keep one NI port
        // Random spanning tree: connect each new node to a random earlier
        // node with spare degree.
        let mut order: Vec<usize> = (0..nodes).collect();
        rng.shuffle(&mut order);
        for i in 1..nodes {
            let new = NodeId(order[i] as u16);
            // Pick an attachment point with room.
            let mut tries = 0;
            loop {
                let parent = NodeId(order[rng.index(i)] as u16);
                if t.degree(parent) < max_degree {
                    t.connect_next_free(parent, new)?;
                    break;
                }
                tries += 1;
                if tries > nodes * 4 {
                    // Fall back to a linear scan for a node with room.
                    let parent = (0..i)
                        .map(|j| NodeId(order[j] as u16))
                        .find(|&n| t.degree(n) < max_degree)
                        .expect("tree attachment always exists under the degree bound");
                    t.connect_next_free(parent, new)?;
                    break;
                }
            }
        }
        // Extra random links.
        let mut added = 0;
        let mut attempts = 0;
        while added < extra_links && attempts < extra_links * 20 + 40 {
            attempts += 1;
            let a = NodeId(rng.index(nodes) as u16);
            let b = NodeId(rng.index(nodes) as u16);
            if a == b || t.degree(a) >= max_degree || t.degree(b) >= max_degree {
                continue;
            }
            // Skip duplicate direct links for cleaner graphs (wiring one
            // would be rejected as a DuplicateLink anyway).
            if t.linked(a, b) {
                continue;
            }
            t.connect_next_free(a, b)?;
            added += 1;
        }
        Ok(t)
    }

    /// A balanced dragonfly with `a` routers per group, `p` terminals per
    /// router and `h` global links per router (`a·h + 1` groups).
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if the wiring plan is inconsistent; see
    /// [`Dragonfly::build`].
    pub fn dragonfly(a: u16, p: u16, h: u16) -> Result<Self, TopologyError> {
        Dragonfly::balanced(a, p, h).build()
    }

    /// A k-ary n-fly butterfly with `stages` switch columns.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if the wiring plan is inconsistent; see
    /// [`Butterfly::build`].
    pub fn butterfly(k: u16, stages: u16) -> Result<Self, TopologyError> {
        Butterfly::new(k, stages).build()
    }

    /// A binary hypercube of dimension `dim` (`2^dim` routers).
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if the wiring plan is inconsistent; see
    /// [`Hypercube::build`].
    pub fn hypercube(dim: u32) -> Result<Self, TopologyError> {
        Hypercube::new(dim).build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_shape() {
        let t = Topology::mesh2d(3, 3, 8).expect("wires fit");
        assert_eq!(t.nodes(), 9);
        assert_eq!(t.wires().len(), 12); // 2*3*2 horizontal+vertical
        assert!(t.is_connected());
        // Corner has degree 2, centre degree 4.
        assert_eq!(t.degree(NodeId(0)), 2);
        assert_eq!(t.degree(NodeId(4)), 4);
        // Every node keeps a terminal port on an 8-port router.
        for n in 0..9 {
            assert!(t.terminal_port(NodeId(n)).is_some());
        }
    }

    #[test]
    fn torus_is_regular() {
        let t = Topology::torus2d(3, 3, 8).expect("wires fit");
        assert!(t.is_connected());
        for n in 0..9 {
            assert_eq!(t.degree(NodeId(n)), 4, "torus nodes all have degree 4");
        }
        assert_eq!(t.wires().len(), 18);
    }

    #[test]
    fn torus_degenerate_dimensions() {
        // 2-wide torus must not double-wire.
        let t = Topology::torus2d(2, 3, 8).expect("wires fit");
        assert!(t.is_connected());
        assert_eq!(t.degree(NodeId(0)), 3); // 1 horizontal + 2 vertical
    }

    #[test]
    fn ring_shape() {
        let t = Topology::ring(5, 4).expect("wires fit");
        assert!(t.is_connected());
        for n in 0..5 {
            assert_eq!(t.degree(NodeId(n)), 2);
        }
    }

    #[test]
    fn wires_are_symmetric() {
        let t = Topology::mesh2d(2, 2, 8).expect("wires fit");
        for w in t.wires() {
            assert_eq!(t.peer_of(w.a.0, w.a.1), Some(w.b));
            assert_eq!(t.peer_of(w.b.0, w.b.1), Some(w.a));
        }
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_wiring_panics() {
        let mut t = Topology::new(2, 2);
        t.connect((NodeId(0), PortId(0)), (NodeId(1), PortId(0)));
        t.connect((NodeId(0), PortId(0)), (NodeId(1), PortId(1)));
    }

    #[test]
    fn irregular_is_connected_and_degree_bounded() {
        for seed in 0..10 {
            let mut rng = SeededRng::new(seed);
            let t = Topology::irregular(12, 5, 6, &mut rng).expect("wires fit");
            assert!(t.is_connected(), "seed {seed}");
            for n in 0..12 {
                let node = NodeId(n);
                assert!(t.degree(node) <= 4, "degree bound leaves an NI port");
                assert!(t.terminal_port(node).is_some());
            }
        }
    }

    #[test]
    fn distances_bfs() {
        let t = Topology::mesh2d(3, 3, 8).expect("wires fit");
        let d = t.distances_from(NodeId(0));
        assert_eq!(d[0], 0);
        assert_eq!(d[8], 4, "opposite corner of a 3x3 mesh");
    }

    #[test]
    fn exhausted_ports_surface_as_an_error() {
        let mut t = Topology::new(3, 1);
        t.connect_next_free(NodeId(0), NodeId(1)).expect("both nodes have a free port");
        assert_eq!(
            t.connect_next_free(NodeId(0), NodeId(2)),
            Err(TopologyError::NoFreePort { node: NodeId(0) }),
        );
        assert_eq!(t.wires().len(), 1, "failed wiring leaves the topology unchanged");
        assert_eq!(t.next_free_port(NodeId(2)), Ok(PortId(0)));
        let msg = TopologyError::NoFreePort { node: NodeId(0) }.to_string();
        assert!(msg.contains("n0 has no free port"), "{msg}");
    }

    #[test]
    fn duplicate_links_surface_as_an_error() {
        let mut t = Topology::new(3, 4);
        t.connect_next_free(NodeId(0), NodeId(1)).expect("both nodes have a free port");
        assert_eq!(
            t.connect_next_free(NodeId(1), NodeId(0)),
            Err(TopologyError::DuplicateLink { a: NodeId(1), b: NodeId(0) }),
        );
        assert_eq!(t.wires().len(), 1, "rejected wiring leaves the topology unchanged");
        let msg = TopologyError::DuplicateLink { a: NodeId(1), b: NodeId(0) }.to_string();
        assert!(msg.contains("n1 and n0 are already linked"), "{msg}");
        // Parallel links stay expressible through explicit ports.
        t.connect((NodeId(0), PortId(2)), (NodeId(1), PortId(2)));
        assert_eq!(t.wires().len(), 2);
    }

    #[test]
    fn single_node_topology_is_connected() {
        let t = Topology::new(1, 8);
        assert!(t.is_connected());
        assert_eq!(t.terminal_port(NodeId(0)), Some(PortId(0)));
    }
}
