//! k-ary n-fly butterfly: a multistage interconnection network of
//! `stages` switch columns by `k^(stages-1)` rows.
//!
//! Switch ⟨s, row⟩ links to ⟨s+1, row'⟩ exactly when `row'` agrees with
//! `row` on every base-`k` digit except digit `s` — crossing boundary `s`
//! can set digit `s` to any value (including a straight link when the
//! digit already matches). Unlike the classic unidirectional fly, links
//! here are bidirectional wires over the shared [`Topology`] type, so any
//! switch can talk to any other and the destination-tag routing in
//! `crate::routing` runs over covering walks (down to the lowest differing
//! digit, up through the highest, then to the destination stage).

use super::{NodeId, Topology, TopologyError};

/// Parameters of a k-ary n-fly butterfly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Butterfly {
    /// Switch radix per direction (`k`): each switch has `k` up-links and
    /// `k` down-links except at the boundary stages.
    pub k: u16,
    /// Stage (column) count `n`; `k^(n-1)` rows.
    pub stages: u16,
    /// Terminal (NI) ports per switch.
    pub terminals_per_router: u16,
}

impl Butterfly {
    /// A `k`-ary butterfly with `stages` columns and one terminal port per
    /// switch.
    ///
    /// # Panics
    ///
    /// Panics if a parameter is degenerate or the shape overflows the
    /// node/port budget.
    pub fn new(k: u16, stages: u16) -> Self {
        Butterfly::with_terminals(k, stages, 1)
    }

    /// A butterfly with an explicit terminal-port count.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`, `stages < 2`, a parameter is zero, or the shape
    /// overflows the node/port budget.
    pub fn with_terminals(k: u16, stages: u16, terminals_per_router: u16) -> Self {
        assert!(k >= 2, "butterfly radix must be at least 2");
        assert!(stages >= 2, "a butterfly needs at least two stages");
        assert!(terminals_per_router > 0, "switches need a terminal port");
        let shape = Butterfly { k, stages, terminals_per_router };
        assert!(shape.nodes() <= usize::from(u16::MAX) + 1, "node ids are u16");
        assert!(
            2 * usize::from(k) + usize::from(terminals_per_router) <= usize::from(u8::MAX),
            "butterfly port count overflows the u8 port id"
        );
        shape
    }

    /// Rows per stage: `k^(stages-1)`.
    pub fn rows(&self) -> usize {
        usize::from(self.k).pow(u32::from(self.stages) - 1)
    }

    /// Total switch count `stages · k^(stages-1)`.
    pub fn nodes(&self) -> usize {
        usize::from(self.stages) * self.rows()
    }

    /// Ports per switch: `k` down + `k` up + terminals. Boundary stages
    /// leave one side unwired; those ports stay free.
    pub fn ports_per_node(&self) -> u8 {
        (2 * self.k + self.terminals_per_router) as u8
    }

    /// Link count `(stages - 1) · rows · k`.
    pub fn links(&self) -> usize {
        (usize::from(self.stages) - 1) * self.rows() * usize::from(self.k)
    }

    /// Closed-form diameter bound for the bidirectional fly: a full
    /// descent plus a full ascent, `2(stages - 1)`.
    pub fn diameter_bound(&self) -> usize {
        2 * (usize::from(self.stages) - 1)
    }

    /// Node id of switch `row` in stage `stage` (stage-major layout).
    pub fn node(&self, stage: usize, row: usize) -> NodeId {
        NodeId((stage * self.rows() + row) as u16)
    }

    /// The `(stage, row)` coordinates of a switch.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        (node.index() / self.rows(), node.index() % self.rows())
    }

    /// Base-`k` digit `i` of a row index.
    pub fn digit(&self, row: usize, i: usize) -> usize {
        row / usize::from(self.k).pow(i as u32) % usize::from(self.k)
    }

    /// `row` with digit `i` replaced by `v`.
    pub fn set_digit(&self, row: usize, i: usize, v: usize) -> usize {
        let place = usize::from(self.k).pow(i as u32);
        row - self.digit(row, i) * place + v * place
    }

    /// Wires the butterfly: for every stage boundary `s`, row `row` and
    /// digit value `v`, links ⟨s, row⟩ to ⟨s+1, row with digit s = v⟩.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if the wiring plan asks for a duplicate
    /// or over-budget link; unreachable for valid parameters.
    pub fn build(&self) -> Result<Topology, TopologyError> {
        let mut t = Topology::new(self.nodes(), self.ports_per_node());
        for s in 0..usize::from(self.stages) - 1 {
            for row in 0..self.rows() {
                for v in 0..usize::from(self.k) {
                    t.connect_next_free(self.node(s, row), self.node(s + 1, self.set_digit(row, s, v)))?;
                }
            }
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fly_shape_counts() {
        let b = Butterfly::new(2, 4);
        assert_eq!(b.rows(), 8);
        assert_eq!(b.nodes(), 32);
        assert_eq!(b.links(), 48);
        let t = b.build().expect("wires fit");
        assert!(t.is_connected());
        assert_eq!(t.wires().len(), 48);
        // Interior switches have degree 2k, boundary switches degree k.
        assert_eq!(t.degree(b.node(0, 0)), 2);
        assert_eq!(t.degree(b.node(1, 0)), 4);
        assert_eq!(t.degree(b.node(3, 0)), 2);
        for n in 0..32 {
            assert!(t.terminal_port(NodeId(n)).is_some());
        }
    }

    #[test]
    fn digit_arithmetic_round_trips() {
        let b = Butterfly::new(3, 4); // rows = 27
        for row in 0..27 {
            for i in 0..3 {
                for v in 0..3 {
                    let r2 = b.set_digit(row, i, v);
                    assert_eq!(b.digit(r2, i), v);
                    for j in 0..3 {
                        if j != i {
                            assert_eq!(b.digit(r2, j), b.digit(row, j));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn boundary_crossing_sets_one_digit() {
        let b = Butterfly::new(2, 4);
        let t = b.build().expect("wires fit");
        for w in t.wires() {
            let (sa, ra) = b.coords(w.a.0);
            let (sb, rb) = b.coords(w.b.0);
            assert_eq!(sb, sa + 1, "wires join adjacent stages");
            // Rows agree on every digit except the boundary digit.
            for d in 0..3 {
                if d != sa {
                    assert_eq!(b.digit(ra, d), b.digit(rb, d), "digit {d}");
                }
            }
        }
    }
}
