//! Deterministic fault-injection campaigns.
//!
//! A [`FaultPlan`] is a schedule of link failures *and repairs* at
//! flit-cycle granularity. Plans are plain data — built by hand for
//! targeted tests or generated from a seed by
//! [`FaultPlan::seeded_campaign`] — so a campaign is reproducible from
//! `(topology, seed, parameters)` alone, independent of execution order.
//! A [`FaultInjector`] walks the plan against a live [`NetworkSim`],
//! applying every event that has come due and reporting which established
//! connections each fault tore down (feed those to a
//! [`crate::recovery::RecoveryManager`] to close the loop).

use mmr_core::ids::PortId;
use mmr_sim::{Cycles, SeededRng};

use crate::network::{NetConnectionId, NetError, NetworkSim};
use crate::topology::{NodeId, Topology};

/// What a scheduled fault event does to its wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Take the wire down ([`NetworkSim::fail_link`]).
    Fail,
    /// Splice the wire back ([`NetworkSim::repair_link`]).
    Repair,
}

/// One scheduled link fault or repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Flit cycle the event fires at.
    pub at: Cycles,
    /// Fail or repair.
    pub action: FaultAction,
    /// Node owning the addressed endpoint.
    pub node: NodeId,
    /// Port of the addressed endpoint (either end of the wire works).
    pub port: PortId,
}

/// A deterministic schedule of link failures and repairs.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a link failure at `at`.
    pub fn fail_at(mut self, at: Cycles, node: NodeId, port: PortId) -> Self {
        self.events.push(FaultEvent { at, action: FaultAction::Fail, node, port });
        self
    }

    /// Schedules a link repair at `at`.
    pub fn repair_at(mut self, at: Cycles, node: NodeId, port: PortId) -> Self {
        self.events.push(FaultEvent { at, action: FaultAction::Repair, node, port });
        self
    }

    /// The scheduled events in firing order (ties keep insertion order).
    pub fn events(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a seeded random campaign over `topology`: `faults` wire
    /// failures at cycles drawn uniformly from `window`, each repaired
    /// `outage` cycles after it strikes. A wire that is scheduled down is
    /// never double-failed — the generator tracks planned outages and draws
    /// another wire — so every generated event applies cleanly. The result
    /// is a pure function of the arguments (one private RNG stream).
    pub fn seeded_campaign(
        topology: &Topology,
        seed: u64,
        faults: usize,
        window: std::ops::Range<u64>,
        outage: Cycles,
    ) -> Self {
        assert!(window.start < window.end, "empty campaign window");
        let mut rng = SeededRng::new(seed ^ 0xFA17_CA4F);
        let wires = topology.wires();
        let mut plan = FaultPlan::new();
        if wires.is_empty() {
            return plan;
        }
        // (wire index, fail cycle, repair cycle) intervals already planned.
        let mut planned: Vec<(usize, u64, u64)> = Vec::with_capacity(faults);
        let mut strikes: Vec<u64> = (0..faults)
            .map(|_| window.start + rng.index((window.end - window.start) as usize) as u64)
            .collect();
        strikes.sort_unstable();
        for at in strikes {
            let down = at + outage.0;
            // Up to |wires| attempts to find a wire not already down at `at`.
            let mut choice = None;
            for _ in 0..wires.len().max(4) {
                let w = rng.index(wires.len());
                let overlaps =
                    planned.iter().any(|&(pw, f, r)| pw == w && at < r && down > f);
                if !overlaps {
                    choice = Some(w);
                    break;
                }
            }
            let Some(w) = choice else { continue };
            planned.push((w, at, down));
            let (node, port) = wires[w].a;
            plan = plan.fail_at(Cycles(at), node, port).repair_at(Cycles(down), node, port);
        }
        plan.events.sort_by_key(|e| e.at);
        plan
    }
}

/// What one [`FaultInjector::poll`] call did to the network.
#[derive(Debug, Clone, Default)]
pub struct FaultTick {
    /// Wires taken down this cycle.
    pub failed: Vec<(NodeId, PortId)>,
    /// Wires spliced back this cycle.
    pub repaired: Vec<(NodeId, PortId)>,
    /// Connections torn down by this cycle's failures.
    pub broken: Vec<NetConnectionId>,
}

impl FaultTick {
    /// Whether anything happened.
    pub fn is_quiet(&self) -> bool {
        self.failed.is_empty() && self.repaired.is_empty() && self.broken.is_empty()
    }
}

/// Walks a [`FaultPlan`] against a live network, one poll per flit cycle.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    cursor: usize,
    skipped: u64,
}

impl FaultInjector {
    /// An injector at the start of `plan`. The plan's events must be sorted
    /// by cycle (guaranteed by the builders and the campaign generator).
    pub fn new(plan: FaultPlan) -> Self {
        debug_assert!(plan.events.windows(2).all(|w| w[0].at <= w[1].at), "plan must be sorted");
        FaultInjector { plan, cursor: 0, skipped: 0 }
    }

    /// Events not yet applied.
    pub fn pending(&self) -> usize {
        self.plan.events.len() - self.cursor
    }

    /// Events that could not be applied (e.g. failing an already-failed
    /// wire in a hand-built plan) and were skipped.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Applies every event due at or before `now`. Inapplicable events
    /// (double failure, repairing a live wire) are counted in
    /// [`FaultInjector::skipped`] rather than aborting the campaign.
    pub fn poll(&mut self, net: &mut NetworkSim, now: Cycles) -> FaultTick {
        let mut tick = FaultTick::default();
        while let Some(ev) = self.plan.events.get(self.cursor) {
            if ev.at > now {
                break;
            }
            let ev = *ev;
            self.cursor += 1;
            match ev.action {
                FaultAction::Fail => match net.fail_link(ev.node, ev.port) {
                    Ok(broken) => {
                        tick.failed.push((ev.node, ev.port));
                        tick.broken.extend(broken);
                    }
                    Err(NetError::LinkAlreadyFailed { .. }) => self.skipped += 1,
                    Err(e) => panic!("fault plan addresses a non-wire: {e}"),
                },
                FaultAction::Repair => match net.repair_link(ev.node, ev.port) {
                    Ok(()) => tick.repaired.push((ev.node, ev.port)),
                    Err(NetError::LinkNotFailed { .. }) => self.skipped += 1,
                    Err(e) => panic!("fault plan addresses a non-wire: {e}"),
                },
            }
        }
        tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmr_core::router::RouterConfig;

    fn mesh_net() -> NetworkSim {
        NetworkSim::new(
            Topology::mesh2d(3, 3, 8).expect("topology wires within the port budget"),
            RouterConfig::paper_default().vcs_per_port(16).candidates(4),
        )
    }

    #[test]
    fn injector_applies_fail_then_repair_on_schedule() {
        let mut net = mesh_net();
        let wire = net.topology().wires()[0];
        let plan = FaultPlan::new()
            .fail_at(Cycles(5), wire.a.0, wire.a.1)
            .repair_at(Cycles(12), wire.a.0, wire.a.1);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.pending(), 2);
        for t in 0..20u64 {
            let tick = inj.poll(&mut net, Cycles(t));
            match t {
                5 => assert_eq!(tick.failed, vec![wire.a]),
                12 => assert_eq!(tick.repaired, vec![wire.a]),
                _ => assert!(tick.is_quiet(), "t={t}: {tick:?}"),
            }
            let expect_ok = !(5..12).contains(&t);
            assert_eq!(net.link_ok(wire.a.0, wire.a.1), expect_ok, "t={t}");
            net.step(Cycles(t));
        }
        assert_eq!(inj.pending(), 0);
        assert_eq!(inj.skipped(), 0);
        assert_eq!(net.stats().links_failed, 1);
        assert_eq!(net.stats().links_repaired, 1);
    }

    #[test]
    fn inapplicable_events_are_skipped_not_fatal() {
        let mut net = mesh_net();
        let wire = net.topology().wires()[0];
        // Double failure and a repair of a live wire.
        let plan = FaultPlan::new()
            .fail_at(Cycles(1), wire.a.0, wire.a.1)
            .fail_at(Cycles(2), wire.a.0, wire.a.1)
            .repair_at(Cycles(3), wire.a.0, wire.a.1)
            .repair_at(Cycles(4), wire.a.0, wire.a.1);
        let mut inj = FaultInjector::new(plan);
        for t in 0..6u64 {
            inj.poll(&mut net, Cycles(t));
        }
        assert_eq!(inj.skipped(), 2);
        assert!(net.link_ok(wire.a.0, wire.a.1));
    }

    #[test]
    fn seeded_campaigns_are_reproducible_and_self_consistent() {
        let topo = Topology::torus2d(3, 3, 8).expect("topology wires within the port budget");
        let a = FaultPlan::seeded_campaign(&topo, 77, 6, 100..2_000, Cycles(300));
        let b = FaultPlan::seeded_campaign(&topo, 77, 6, 100..2_000, Cycles(300));
        assert_eq!(a.events().count(), b.events().count());
        for (x, y) in a.events().zip(b.events()) {
            assert_eq!(x, y, "same seed, same plan");
        }
        let c = FaultPlan::seeded_campaign(&topo, 78, 6, 100..2_000, Cycles(300));
        assert!(
            a.events().zip(c.events()).any(|(x, y)| x != y) || a.len() != c.len(),
            "different seeds diverge"
        );
        // Every generated event applies cleanly.
        let mut net = NetworkSim::new(
            topo,
            RouterConfig::paper_default().vcs_per_port(8).candidates(2),
        );
        let mut inj = FaultInjector::new(a);
        for t in 0..2_500u64 {
            inj.poll(&mut net, Cycles(t));
        }
        assert_eq!(inj.pending(), 0);
        assert_eq!(inj.skipped(), 0, "campaign generator never plans a double failure");
        assert_eq!(net.stats().links_failed, net.stats().links_repaired);
    }
}
