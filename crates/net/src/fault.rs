//! Deterministic fault-injection campaigns.
//!
//! A [`FaultPlan`] is a schedule of *permanent* faults (link failures and
//! repairs, whole-router failures and repairs) and *transient* wire faults
//! (a corrupted or dropped flit) at flit-cycle granularity. Plans are plain
//! data — built by hand for targeted tests or generated from a seed by
//! [`FaultPlan::seeded_campaign`] / [`FaultPlan::seeded_node_campaign`] /
//! [`FaultPlan::seeded_chaos_campaign`], composable via
//! [`FaultPlan::merged`] — so a campaign is reproducible from
//! `(topology, seed, parameters)` alone,
//! independent of execution order. Construction is validated:
//! [`FaultPlan::normalized`] sorts events into firing order and rejects
//! contradictory schedules (a fail *and* a repair of the same wire in the
//! same cycle) instead of silently relying on insertion order.
//!
//! A [`FaultInjector`] walks the plan against a live [`NetworkSim`],
//! applying every event that has come due and reporting which established
//! connections each permanent fault tore down (feed those to a
//! [`crate::recovery::RecoveryManager`] to close the loop). Transient
//! events arm the addressed wire endpoint: the next flit delivered into it
//! is corrupted or dropped (see [`NetworkSim::arm_transient`]).

use mmr_core::ids::PortId;
use mmr_sim::{Cycles, SeededRng};

use crate::network::{NetConnectionId, NetError, NetworkSim, TransientKind};
use crate::topology::{NodeId, Topology};

/// What a scheduled fault event does to its wire or node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Take the wire down ([`NetworkSim::fail_link`]).
    Fail,
    /// Splice the wire back ([`NetworkSim::repair_link`]).
    Repair,
    /// Take the whole router down ([`NetworkSim::fail_node`]); the event's
    /// `port` is ignored.
    FailNode,
    /// Bring the router back ([`NetworkSim::repair_node`]); the event's
    /// `port` is ignored.
    RepairNode,
    /// Transient: flip a payload bit of the next flit delivered into the
    /// addressed endpoint (CRC-detectable wire corruption).
    CorruptFlit,
    /// Transient: drop the next flit delivered into the addressed endpoint.
    DropFlit,
}

impl FaultAction {
    /// Whether the action changes topology (link or node fail/repair)
    /// rather than damaging a single flit.
    pub fn is_permanent(self) -> bool {
        !matches!(self, FaultAction::CorruptFlit | FaultAction::DropFlit)
    }

    /// Whether the action addresses a whole node rather than a wire
    /// endpoint.
    pub fn is_node(self) -> bool {
        matches!(self, FaultAction::FailNode | FaultAction::RepairNode)
    }
}

/// One scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Flit cycle the event fires at.
    pub at: Cycles,
    /// What happens.
    pub action: FaultAction,
    /// Node owning the addressed endpoint.
    pub node: NodeId,
    /// Port of the addressed endpoint. For permanent faults either end of
    /// the wire works; transients strike flits arriving *into* this
    /// endpoint.
    pub port: PortId,
}

/// Why a [`FaultPlan`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlanError {
    /// The plan schedules both a failure and a repair of the same endpoint
    /// in the same cycle — the outcome would depend on insertion order.
    Conflict {
        /// Cycle of the contradiction.
        at: Cycles,
        /// Node of the twice-addressed endpoint.
        node: NodeId,
        /// Port of the twice-addressed endpoint.
        port: PortId,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::Conflict { at, node, port } => write!(
                f,
                "fault plan schedules both fail and repair of {node}.{port} at cycle {}",
                at.count()
            ),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A deterministic schedule of permanent and transient wire faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a link failure at `at`.
    pub fn fail_at(mut self, at: Cycles, node: NodeId, port: PortId) -> Self {
        self.events.push(FaultEvent { at, action: FaultAction::Fail, node, port });
        self
    }

    /// Schedules a link repair at `at`.
    pub fn repair_at(mut self, at: Cycles, node: NodeId, port: PortId) -> Self {
        self.events.push(FaultEvent { at, action: FaultAction::Repair, node, port });
        self
    }

    /// Schedules a whole-router failure at `at` (the port field is a
    /// placeholder; node events address the node alone).
    pub fn fail_node_at(mut self, at: Cycles, node: NodeId) -> Self {
        self.events.push(FaultEvent { at, action: FaultAction::FailNode, node, port: PortId(0) });
        self
    }

    /// Schedules a router repair at `at`.
    pub fn repair_node_at(mut self, at: Cycles, node: NodeId) -> Self {
        self.events
            .push(FaultEvent { at, action: FaultAction::RepairNode, node, port: PortId(0) });
        self
    }

    /// Schedules a transient corruption: the next flit delivered into
    /// `(node, port)` at or after `at` has a payload bit flipped.
    pub fn corrupt_at(mut self, at: Cycles, node: NodeId, port: PortId) -> Self {
        self.events.push(FaultEvent { at, action: FaultAction::CorruptFlit, node, port });
        self
    }

    /// Schedules a transient drop: the next flit delivered into
    /// `(node, port)` at or after `at` vanishes on the wire.
    pub fn drop_at(mut self, at: Cycles, node: NodeId, port: PortId) -> Self {
        self.events.push(FaultEvent { at, action: FaultAction::DropFlit, node, port });
        self
    }

    /// The scheduled events in firing order (ties keep insertion order).
    pub fn events(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sorts events into firing order (stable, so same-cycle events keep
    /// insertion order), drops *identical* duplicate permanent events, and
    /// rejects contradictory schedules. Node events conflict only with node
    /// events on the same node; wire events only with wire events on the
    /// same endpoint — a node failure and a link failure in the same cycle
    /// are two different faults, not a contradiction.
    ///
    /// Duplicate transients at the same endpoint are kept — each one arms
    /// the wire for one more flit.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::Conflict`] when the same endpoint (or node) is
    /// both failed and repaired in the same cycle.
    pub fn normalized(mut self) -> Result<Self, FaultPlanError> {
        self.events.sort_by_key(|e| e.at);
        let mut out: Vec<FaultEvent> = Vec::with_capacity(self.events.len());
        for ev in self.events {
            if ev.action.is_permanent() {
                let same_slot = out.iter().rev().take_while(|p| p.at == ev.at).find(|p| {
                    p.action.is_permanent()
                        && p.action.is_node() == ev.action.is_node()
                        && p.node == ev.node
                        && (ev.action.is_node() || p.port == ev.port)
                });
                if let Some(prev) = same_slot {
                    if prev.action == ev.action {
                        continue; // identical duplicate: keep one
                    }
                    return Err(FaultPlanError::Conflict {
                        at: ev.at,
                        node: ev.node,
                        port: ev.port,
                    });
                }
            }
            out.push(ev);
        }
        Ok(FaultPlan { events: out })
    }

    /// Merges another plan into this one, re-sorting into firing order
    /// (stable: same-cycle events keep `self`-before-`other` order). Lets a
    /// campaign combine a seeded link schedule with a seeded node schedule.
    pub fn merged(mut self, other: FaultPlan) -> Self {
        self.events.extend(other.events);
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Generates a seeded random campaign of *permanent* faults over
    /// `topology`: `faults` wire failures at cycles drawn uniformly from
    /// `window`, each repaired `outage` cycles after it strikes. A wire that
    /// is scheduled down is never double-failed — the generator tracks
    /// planned outages and draws another wire — so every generated event
    /// applies cleanly. The result is a pure function of the arguments (one
    /// private RNG stream).
    pub fn seeded_campaign(
        topology: &Topology,
        seed: u64,
        faults: usize,
        window: std::ops::Range<u64>,
        outage: Cycles,
    ) -> Self {
        assert!(window.start < window.end, "empty campaign window");
        let mut rng = SeededRng::new(seed ^ 0xFA17_CA4F);
        let wires = topology.wires();
        let mut plan = FaultPlan::new();
        if wires.is_empty() {
            return plan;
        }
        // (wire index, fail cycle, repair cycle) intervals already planned.
        let mut planned: Vec<(usize, u64, u64)> = Vec::with_capacity(faults);
        let mut strikes: Vec<u64> = (0..faults)
            .map(|_| window.start + rng.index((window.end - window.start) as usize) as u64)
            .collect();
        strikes.sort_unstable();
        for at in strikes {
            let down = at + outage.0;
            // Up to |wires| attempts to find a wire not already down at `at`.
            let mut choice = None;
            for _ in 0..wires.len().max(4) {
                let w = rng.index(wires.len());
                let overlaps =
                    planned.iter().any(|&(pw, f, r)| pw == w && at < r && down > f);
                if !overlaps {
                    choice = Some(w);
                    break;
                }
            }
            let Some(w) = choice else { continue };
            planned.push((w, at, down));
            let (node, port) = wires[w].a;
            plan = plan.fail_at(Cycles(at), node, port).repair_at(Cycles(down), node, port);
        }
        plan.events.sort_by_key(|e| e.at);
        plan
    }

    /// Generates a seeded random campaign of *whole-router* faults over
    /// `topology`: `node_faults` router failures at cycles drawn uniformly
    /// from `window`, each repaired `outage` cycles after it strikes. A
    /// router scheduled down is never double-failed — planned outages are
    /// tracked and another node drawn — so every generated event applies
    /// cleanly. The RNG stream is salted differently from the link
    /// campaign, so the two schedules compose via [`FaultPlan::merged`]
    /// without correlation. The result is a pure function of the arguments.
    pub fn seeded_node_campaign(
        topology: &Topology,
        seed: u64,
        node_faults: usize,
        window: std::ops::Range<u64>,
        outage: Cycles,
    ) -> Self {
        assert!(window.start < window.end, "empty campaign window");
        let mut rng = SeededRng::new(seed ^ 0x0DE0_FA17);
        let n = topology.nodes();
        let mut plan = FaultPlan::new();
        if n == 0 {
            return plan;
        }
        // (node index, fail cycle, repair cycle) intervals already planned.
        let mut planned: Vec<(usize, u64, u64)> = Vec::with_capacity(node_faults);
        let mut strikes: Vec<u64> = (0..node_faults)
            .map(|_| window.start + rng.index((window.end - window.start) as usize) as u64)
            .collect();
        strikes.sort_unstable();
        for at in strikes {
            let down = at + outage.0;
            // Up to |nodes| attempts to find a router not already down at `at`.
            let mut choice = None;
            for _ in 0..n.max(4) {
                let c = rng.index(n);
                let overlaps = planned.iter().any(|&(pc, f, r)| pc == c && at < r && down > f);
                if !overlaps {
                    choice = Some(c);
                    break;
                }
            }
            let Some(c) = choice else { continue };
            planned.push((c, at, down));
            let node = NodeId(c as u16);
            plan = plan.fail_node_at(Cycles(at), node).repair_node_at(Cycles(down), node);
        }
        plan.events.sort_by_key(|e| e.at);
        plan
    }

    /// Generates a seeded *mixed* campaign: the permanent schedule of
    /// [`FaultPlan::seeded_campaign`] plus `transients` corrupt/drop events
    /// (50/50, on a uniformly drawn wire endpoint, at a cycle drawn from
    /// `window`). Transient cycles avoid none of the outages — a transient
    /// armed on a downed wire simply waits for traffic to resume. The
    /// result is a pure function of the arguments.
    pub fn seeded_chaos_campaign(
        topology: &Topology,
        seed: u64,
        faults: usize,
        transients: usize,
        window: std::ops::Range<u64>,
        outage: Cycles,
    ) -> Self {
        let mut plan =
            FaultPlan::seeded_campaign(topology, seed, faults, window.clone(), outage);
        let wires = topology.wires();
        if wires.is_empty() {
            return plan;
        }
        let mut rng = SeededRng::new(seed ^ 0x7A4E_51E7);
        for _ in 0..transients {
            let at = window.start + rng.index((window.end - window.start) as usize) as u64;
            let wire = wires[rng.index(wires.len())];
            // Either direction of the wire: transients strike arriving flits.
            let (node, port) = if rng.index(2) == 0 { wire.a } else { wire.b };
            let action =
                if rng.index(2) == 0 { FaultAction::CorruptFlit } else { FaultAction::DropFlit };
            plan.events.push(FaultEvent { at: Cycles(at), action, node, port });
        }
        plan.events.sort_by_key(|e| e.at);
        plan
    }
}

/// What one [`FaultInjector::poll`] call did to the network.
#[derive(Debug, Clone, Default)]
pub struct FaultTick {
    /// Wires taken down this cycle.
    pub failed: Vec<(NodeId, PortId)>,
    /// Wires spliced back this cycle.
    pub repaired: Vec<(NodeId, PortId)>,
    /// Routers quarantined this cycle.
    pub nodes_failed: Vec<NodeId>,
    /// Routers brought back this cycle.
    pub nodes_repaired: Vec<NodeId>,
    /// Connections torn down by this cycle's failures (link and node).
    pub broken: Vec<NetConnectionId>,
    /// Transient events armed this cycle (corrupts + drops).
    pub transients_armed: usize,
}

impl FaultTick {
    /// Whether anything happened.
    pub fn is_quiet(&self) -> bool {
        self.failed.is_empty()
            && self.repaired.is_empty()
            && self.nodes_failed.is_empty()
            && self.nodes_repaired.is_empty()
            && self.broken.is_empty()
            && self.transients_armed == 0
    }
}

/// Walks a [`FaultPlan`] against a live network, one poll per flit cycle.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    cursor: usize,
    skipped: u64,
}

impl FaultInjector {
    /// An injector at the start of `plan`, normalizing it first (see
    /// [`FaultPlan::normalized`]).
    ///
    /// # Errors
    ///
    /// [`FaultPlanError`] when the plan is contradictory.
    pub fn new(plan: FaultPlan) -> Result<Self, FaultPlanError> {
        let plan = plan.normalized()?;
        Ok(FaultInjector { plan, cursor: 0, skipped: 0 })
    }

    /// Events not yet applied.
    pub fn pending(&self) -> usize {
        self.plan.events.len() - self.cursor
    }

    /// Events that could not be applied (e.g. failing an already-failed
    /// wire in a hand-built plan) and were skipped.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Applies every event due at or before `now`. Inapplicable events
    /// (double failure, repairing a live wire) are counted in
    /// [`FaultInjector::skipped`] rather than aborting the campaign.
    pub fn poll(&mut self, net: &mut NetworkSim, now: Cycles) -> FaultTick {
        let mut tick = FaultTick::default();
        while let Some(ev) = self.plan.events.get(self.cursor) {
            if ev.at > now {
                break;
            }
            let ev = *ev;
            self.cursor += 1;
            match ev.action {
                FaultAction::Fail => match net.fail_link(ev.node, ev.port) {
                    Ok(broken) => {
                        tick.failed.push((ev.node, ev.port));
                        tick.broken.extend(broken);
                    }
                    Err(NetError::LinkAlreadyFailed { .. }) => self.skipped += 1,
                    Err(e) => panic!("fault plan addresses a non-wire: {e}"),
                },
                FaultAction::Repair => match net.repair_link(ev.node, ev.port) {
                    Ok(()) => tick.repaired.push((ev.node, ev.port)),
                    Err(NetError::LinkNotFailed { .. }) => self.skipped += 1,
                    Err(e) => panic!("fault plan addresses a non-wire: {e}"),
                },
                FaultAction::FailNode => match net.fail_node(ev.node) {
                    Ok(broken) => {
                        tick.nodes_failed.push(ev.node);
                        tick.broken.extend(broken);
                    }
                    Err(NetError::NodeAlreadyFailed { .. }) => self.skipped += 1,
                    Err(e) => panic!("fault plan addresses an unknown node: {e}"),
                },
                FaultAction::RepairNode => match net.repair_node(ev.node) {
                    Ok(()) => tick.nodes_repaired.push(ev.node),
                    Err(NetError::NodeNotFailed { .. }) => self.skipped += 1,
                    Err(e) => panic!("fault plan addresses an unknown node: {e}"),
                },
                FaultAction::CorruptFlit | FaultAction::DropFlit => {
                    let kind = if ev.action == FaultAction::CorruptFlit {
                        TransientKind::Corrupt
                    } else {
                        TransientKind::Drop
                    };
                    match net.arm_transient(ev.node, ev.port, kind) {
                        Ok(()) => tick.transients_armed += 1,
                        Err(e) => panic!("fault plan addresses a non-wire: {e}"),
                    }
                }
            }
        }
        tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmr_core::router::RouterConfig;

    fn mesh_net() -> NetworkSim {
        NetworkSim::new(
            Topology::mesh2d(3, 3, 8).expect("topology wires within the port budget"),
            RouterConfig::paper_default().vcs_per_port(16).candidates(4),
        )
    }

    #[test]
    fn injector_applies_fail_then_repair_on_schedule() {
        let mut net = mesh_net();
        let wire = net.topology().wires()[0];
        let plan = FaultPlan::new()
            .fail_at(Cycles(5), wire.a.0, wire.a.1)
            .repair_at(Cycles(12), wire.a.0, wire.a.1);
        let mut inj = FaultInjector::new(plan).expect("consistent plan");
        assert_eq!(inj.pending(), 2);
        for t in 0..20u64 {
            let tick = inj.poll(&mut net, Cycles(t));
            match t {
                5 => assert_eq!(tick.failed, vec![wire.a]),
                12 => assert_eq!(tick.repaired, vec![wire.a]),
                _ => assert!(tick.is_quiet(), "t={t}: {tick:?}"),
            }
            let expect_ok = !(5..12).contains(&t);
            assert_eq!(net.link_ok(wire.a.0, wire.a.1), expect_ok, "t={t}");
            net.step(Cycles(t));
        }
        assert_eq!(inj.pending(), 0);
        assert_eq!(inj.skipped(), 0);
        assert_eq!(net.stats().links_failed, 1);
        assert_eq!(net.stats().links_repaired, 1);
    }

    #[test]
    fn inapplicable_events_are_skipped_not_fatal() {
        let mut net = mesh_net();
        let wire = net.topology().wires()[0];
        // Double failure (in different cycles) and a repair of a live wire.
        let plan = FaultPlan::new()
            .fail_at(Cycles(1), wire.a.0, wire.a.1)
            .fail_at(Cycles(2), wire.a.0, wire.a.1)
            .repair_at(Cycles(3), wire.a.0, wire.a.1)
            .repair_at(Cycles(4), wire.a.0, wire.a.1);
        let mut inj = FaultInjector::new(plan).expect("consistent plan");
        for t in 0..6u64 {
            inj.poll(&mut net, Cycles(t));
        }
        assert_eq!(inj.skipped(), 2);
        assert!(net.link_ok(wire.a.0, wire.a.1));
    }

    #[test]
    fn normalization_sorts_out_of_order_events() {
        let wire_node = NodeId(0);
        let plan = FaultPlan::new()
            .repair_at(Cycles(9), wire_node, PortId(0))
            .fail_at(Cycles(2), wire_node, PortId(0))
            .normalized()
            .expect("consistent plan");
        let cycles: Vec<u64> = plan.events().map(|e| e.at.count()).collect();
        assert_eq!(cycles, vec![2, 9], "events sorted into firing order");
    }

    #[test]
    fn normalization_drops_identical_duplicates() {
        let plan = FaultPlan::new()
            .fail_at(Cycles(5), NodeId(1), PortId(2))
            .fail_at(Cycles(5), NodeId(1), PortId(2))
            .normalized()
            .expect("duplicates are not a contradiction");
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn normalization_rejects_same_cycle_fail_and_repair() {
        let err = FaultPlan::new()
            .fail_at(Cycles(7), NodeId(3), PortId(1))
            .repair_at(Cycles(7), NodeId(3), PortId(1))
            .normalized()
            .expect_err("contradiction");
        assert_eq!(
            err,
            FaultPlanError::Conflict { at: Cycles(7), node: NodeId(3), port: PortId(1) }
        );
        assert!(err.to_string().contains("cycle 7"), "{err}");
    }

    #[test]
    fn duplicate_transients_are_kept_one_per_flit() {
        let plan = FaultPlan::new()
            .corrupt_at(Cycles(4), NodeId(0), PortId(0))
            .corrupt_at(Cycles(4), NodeId(0), PortId(0))
            .drop_at(Cycles(4), NodeId(0), PortId(0))
            .normalized()
            .expect("transient duplicates are legal");
        assert_eq!(plan.len(), 3, "each transient arms one more flit");
    }

    #[test]
    fn transient_events_arm_the_wire() {
        let mut net = mesh_net();
        let wire = net.topology().wires()[0];
        let plan = FaultPlan::new().corrupt_at(Cycles(2), wire.a.0, wire.a.1);
        let mut inj = FaultInjector::new(plan).expect("consistent plan");
        let tick = inj.poll(&mut net, Cycles(2));
        assert_eq!(tick.transients_armed, 1);
        assert!(!tick.is_quiet());
    }

    #[test]
    fn seeded_campaigns_are_reproducible_and_self_consistent() {
        let topo = Topology::torus2d(3, 3, 8).expect("topology wires within the port budget");
        let a = FaultPlan::seeded_campaign(&topo, 77, 6, 100..2_000, Cycles(300));
        let b = FaultPlan::seeded_campaign(&topo, 77, 6, 100..2_000, Cycles(300));
        assert_eq!(a.events().count(), b.events().count());
        for (x, y) in a.events().zip(b.events()) {
            assert_eq!(x, y, "same seed, same plan");
        }
        let c = FaultPlan::seeded_campaign(&topo, 78, 6, 100..2_000, Cycles(300));
        assert!(
            a.events().zip(c.events()).any(|(x, y)| x != y) || a.len() != c.len(),
            "different seeds diverge"
        );
        // Every generated event applies cleanly.
        let mut net = NetworkSim::new(
            topo,
            RouterConfig::paper_default().vcs_per_port(8).candidates(2),
        );
        let mut inj = FaultInjector::new(a).expect("generated plans are consistent");
        for t in 0..2_500u64 {
            inj.poll(&mut net, Cycles(t));
        }
        assert_eq!(inj.pending(), 0);
        assert_eq!(inj.skipped(), 0, "campaign generator never plans a double failure");
        assert_eq!(net.stats().links_failed, net.stats().links_repaired);
    }

    #[test]
    fn node_events_conflict_only_with_node_events() {
        // Same-cycle fail+repair of one node is contradictory.
        let err = FaultPlan::new()
            .fail_node_at(Cycles(7), NodeId(3))
            .repair_node_at(Cycles(7), NodeId(3))
            .normalized()
            .expect_err("contradiction");
        assert!(matches!(err, FaultPlanError::Conflict { node: NodeId(3), .. }));
        // A node event and a wire event on port 0 of the same node in the
        // same cycle are two different faults, not a contradiction.
        let plan = FaultPlan::new()
            .fail_node_at(Cycles(7), NodeId(3))
            .repair_at(Cycles(7), NodeId(3), PortId(0))
            .normalized()
            .expect("node and wire domains are disjoint");
        assert_eq!(plan.len(), 2);
        // Identical duplicate node events collapse to one.
        let plan = FaultPlan::new()
            .fail_node_at(Cycles(5), NodeId(1))
            .fail_node_at(Cycles(5), NodeId(1))
            .normalized()
            .expect("duplicates are not a contradiction");
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn seeded_node_campaigns_are_reproducible_and_self_consistent() {
        let topo = Topology::torus2d(3, 3, 8).expect("topology wires within the port budget");
        let a = FaultPlan::seeded_node_campaign(&topo, 77, 3, 100..2_000, Cycles(300));
        let b = FaultPlan::seeded_node_campaign(&topo, 77, 3, 100..2_000, Cycles(300));
        assert!(a.events().zip(b.events()).all(|(x, y)| x == y) && a.len() == b.len());
        assert!(a.events().all(|e| e.action.is_node()));
        // Every generated event applies cleanly to a live network.
        let mut net = NetworkSim::new(
            topo,
            RouterConfig::paper_default().vcs_per_port(8).candidates(2),
        );
        let mut inj = FaultInjector::new(a).expect("generated plans are consistent");
        for t in 0..2_500u64 {
            inj.poll(&mut net, Cycles(t));
        }
        assert_eq!(inj.pending(), 0);
        assert_eq!(inj.skipped(), 0, "generator never plans a double node failure");
        assert_eq!(net.stats().nodes_failed, net.stats().nodes_repaired);
        assert!(net.stats().nodes_failed > 0);
    }

    #[test]
    fn merged_plans_interleave_by_cycle_and_stay_consistent() {
        let topo = Topology::mesh2d(3, 3, 8).expect("topology wires within the port budget");
        let links = FaultPlan::seeded_campaign(&topo, 9, 4, 100..2_000, Cycles(300));
        let nodes = FaultPlan::seeded_node_campaign(&topo, 9, 2, 100..2_000, Cycles(300));
        let merged = links.clone().merged(nodes.clone());
        assert_eq!(merged.len(), links.len() + nodes.len());
        let mut last = 0u64;
        for ev in merged.events() {
            assert!(ev.at.count() >= last, "merged events sorted into firing order");
            last = ev.at.count();
        }
        merged.normalized().expect("independent seeded schedules merge cleanly");
    }

    #[test]
    fn chaos_campaigns_extend_the_permanent_schedule() {
        let topo = Topology::torus2d(3, 3, 8).expect("topology wires within the port budget");
        let base = FaultPlan::seeded_campaign(&topo, 77, 4, 100..2_000, Cycles(300));
        let chaos = FaultPlan::seeded_chaos_campaign(&topo, 77, 4, 10, 100..2_000, Cycles(300));
        assert_eq!(chaos.len(), base.len() + 10);
        let transients =
            chaos.events().filter(|e| !e.action.is_permanent()).count();
        assert_eq!(transients, 10);
        // Same permanent sub-schedule, in order.
        let perm: Vec<&FaultEvent> =
            chaos.events().filter(|e| e.action.is_permanent()).collect();
        for (x, y) in base.events().zip(perm) {
            assert_eq!(x, y, "permanent schedule unchanged by the transient overlay");
        }
        // Reproducible.
        let again = FaultPlan::seeded_chaos_campaign(&topo, 77, 4, 10, 100..2_000, Cycles(300));
        assert!(chaos.events().zip(again.events()).all(|(x, y)| x == y));
    }
}
