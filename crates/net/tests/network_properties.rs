//! Property tests over the multi-router network invariants.

use mmr_core::router::RouterConfig;
use mmr_net::setup::cbr_mbps;
use mmr_net::{NetworkSim, NodeId, SetupStrategy, Topology, UpDownRouting};
use mmr_sim::{Cycles, SeededRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random irregular topologies are always connected, degree-bounded,
    /// and legally routable between every pair.
    #[test]
    fn irregular_topologies_are_sound(seed in any::<u64>(), nodes in 4usize..14, extra in 0usize..8) {
        let mut rng = SeededRng::new(seed);
        let t = Topology::irregular(nodes, 6, extra, &mut rng).expect("topology wires within the port budget");
        prop_assert!(t.is_connected());
        let routing = UpDownRouting::new(&t);
        for a in 0..nodes as u16 {
            prop_assert!(t.terminal_port(NodeId(a)).is_some());
            for b in 0..nodes as u16 {
                prop_assert!(
                    routing.legal_distance(NodeId(a), NodeId(b), None) != usize::MAX,
                    "{a}->{b} unroutable"
                );
            }
        }
    }

    /// Any interleaving of setups and teardowns leaves the routers with
    /// exactly the live connections' reservations — nothing leaks, nothing
    /// is double-freed.
    #[test]
    fn setup_teardown_is_leak_free(
        seed in any::<u64>(),
        ops in prop::collection::vec((0u16..9, 0u16..9, any::<bool>()), 1..60)
    ) {
        let mut net = NetworkSim::new(
            Topology::mesh2d(3, 3, 8).expect("topology wires within the port budget"),
            RouterConfig::paper_default().vcs_per_port(6).candidates(2).seed(seed),
        );
        let mut live = Vec::new();
        let mut expected_hops = 0usize;
        for (a, b, teardown) in ops {
            if teardown && !live.is_empty() {
                let (conn, hops) = live.swap_remove(0);
                net.teardown(conn).expect("was live");
                expected_hops -= hops;
            } else if a != b {
                if let Ok(conn) = net.establish(NodeId(a), NodeId(b), cbr_mbps(124.0), SetupStrategy::Epb) {
                    let hops = net.connection(conn).expect("live").hops.len();
                    live.push((conn, hops));
                    expected_hops += hops;
                }
            }
            let total: usize = (0..9).map(|n| net.router(NodeId(n)).connections()).sum();
            prop_assert_eq!(total, expected_hops, "router-local reservations match live paths");
        }
    }

    /// Streams deliver every injected flit in order, whatever the topology
    /// seed and injection pattern.
    #[test]
    fn stream_delivery_is_lossless_and_ordered(
        seed in any::<u64>(),
        period in 4u64..12,
        cycles in 200u64..600
    ) {
        let mut rng = SeededRng::new(seed);
        let t = Topology::irregular(8, 6, 4, &mut rng).expect("topology wires within the port budget");
        let far = (0..8u16)
            .max_by_key(|&n| t.distances_from(NodeId(0))[usize::from(n)])
            .expect("non-empty");
        let mut net = NetworkSim::new(
            t,
            RouterConfig::paper_default().vcs_per_port(8).candidates(4).seed(seed),
        );
        // Rate matched to the injection period with slack.
        let mbps = (1240.0 / period as f64) * 0.9;
        let Ok(conn) = net.establish(NodeId(0), NodeId(far), cbr_mbps(mbps), SetupStrategy::Epb)
        else {
            // Some tight irregular graphs cannot fit the stream; that is an
            // admission outcome, not a failure of this property.
            return Ok(());
        };
        let mut injected = 0u64;
        for t in 0..cycles {
            if t % period == 0 && net.can_inject(conn) {
                net.inject(conn, Cycles(t)).expect("checked");
                injected += 1;
            }
            net.step(Cycles(t));
        }
        for t in cycles..cycles + 100 {
            net.step(Cycles(t));
        }
        prop_assert_eq!(net.connection(conn).expect("live").delivered, injected);
        prop_assert_eq!(net.stats().out_of_order, 0);
    }
}
