//! Property tests over the admission controller: arbitrary churn
//! interleavings never oversubscribe a link's bandwidth book or a source
//! NI's injection ceiling, every request gets a typed verdict (no
//! panics), and aggressive shedding preempts sessions without leaking a
//! VC slot, credit, or bandwidth reservation — with the cycle-accurate
//! auditor armed throughout.

use mmr_core::ids::PortId;
use mmr_core::router::RouterConfig;
use mmr_core::{AuditConfig, QosClass};
use mmr_net::{AdmissionController, AdmitPolicy, NetworkSim, NodeId, SessionId, Topology};
use mmr_sim::{Bandwidth, Cycles};
use proptest::prelude::*;

const NODES: u16 = 9;
const PORTS: u8 = 8;

/// Request rates spanning the paper's ladder from voice to HDTV.
const RATES_MBPS: [f64; 5] = [0.064, 2.0, 16.0, 55.0, 120.0];

fn mesh_net(seed: u64) -> NetworkSim {
    let mut net = NetworkSim::new(
        Topology::mesh2d(3, 3, PORTS).expect("topology wires within the port budget"),
        RouterConfig::paper_default().vcs_per_port(8).candidates(2).seed(seed),
    );
    net.enable_audit(AuditConfig::default());
    net
}

fn max_book_load(net: &NetworkSim) -> f64 {
    let mut max = 0.0f64;
    for n in 0..NODES {
        let router = net.router(NodeId(n));
        for p in 0..PORTS {
            let port = PortId(p);
            max = max.max(router.bandwidth_book(port).load_factor());
            max = max.max(router.input_bandwidth_book(port).load_factor());
        }
    }
    max
}

fn total_reservations(net: &NetworkSim) -> usize {
    (0..NODES).map(|n| net.router(NodeId(n)).connections()).sum()
}

/// Aggregate guaranteed egress reserved at `node` by the controller's
/// active sessions, recomputed from the public session API.
fn source_egress_bps(ctl: &AdmissionController, node: NodeId) -> f64 {
    let mgr = ctl.sessions();
    let mut total = 0.0;
    for (id, _) in mgr.active() {
        if mgr.endpoints(id).is_some_and(|(src, _)| src == node) {
            if let Some(class) = mgr.class(id) {
                total += class.guaranteed_rate().bits_per_sec();
            }
        }
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary interleavings of requests, closes, and stepping: after
    /// every operation no bandwidth book exceeds unit load and no source
    /// node's guaranteed egress exceeds the policy's NI ceiling — the two
    /// oversubscription modes the controller exists to prevent.
    #[test]
    fn arbitrary_churn_never_oversubscribes(
        seed in any::<u64>(),
        ops in prop::collection::vec((0u16..9, 0u16..9, 0usize..5, 0u8..4), 1..60),
    ) {
        let mut net = mesh_net(seed);
        let policy = AdmitPolicy::default();
        let ni_ceiling = policy.ni_headroom * net.link_rate().bits_per_sec();
        let mut ctl = AdmissionController::new(policy);
        let mut live: Vec<SessionId> = Vec::new();
        let mut t = 0u64;
        for (a, b, rate, op) in ops {
            match op {
                0 | 1 if a != b => {
                    let class = if op == 0 {
                        QosClass::Cbr {
                            rate: Bandwidth::from_mbps(
                                *RATES_MBPS.get(rate).expect("index drawn in range"),
                            ),
                        }
                    } else {
                        QosClass::BestEffort
                    };
                    // Any verdict is legal; a panic is not.
                    let verdict = ctl.request(&mut net, NodeId(a), NodeId(b), class);
                    if let Some(id) = verdict.session() {
                        live.push(id);
                    }
                }
                2 => {
                    if !live.is_empty() {
                        let id = live.remove(rate % live.len());
                        ctl.close(&mut net, id);
                    }
                }
                _ => {
                    for _ in 0..4 {
                        let report = net.step(Cycles(t));
                        let (_, preempted) = ctl.service(&mut net, &report, Cycles(t));
                        for p in &preempted {
                            live.retain(|&id| id != p.session);
                        }
                        t += 1;
                    }
                }
            }
            prop_assert!(
                max_book_load(&net) <= 1.0 + 1e-9,
                "a bandwidth book went past unit capacity"
            );
            for n in 0..NODES {
                let egress = source_egress_bps(&ctl, NodeId(n));
                prop_assert!(
                    egress <= ni_ceiling * (1.0 + 1e-9),
                    "node {n} reserved {egress} bps of egress against an NI ceiling of \
                     {ni_ceiling} bps"
                );
            }
        }
        // Close everything; nothing may stay reserved.
        for id in live.drain(..) {
            ctl.close(&mut net, id);
        }
        // Keep servicing through the drain: an in-flight upgrade probe whose
        // session was closed mid-handshake is only reaped by `service`.
        for _ in 0..64 {
            let report = net.step(Cycles(t));
            ctl.service(&mut net, &report, Cycles(t));
            t += 1;
        }
        prop_assert_eq!(total_reservations(&net), 0, "no orphaned VC slots");
        // Mixed-rate reserve/release orderings leave f64 dust in the running
        // registers (clamped at zero), so tolerate epsilon rather than 0.0.
        prop_assert!(max_book_load(&net) <= 1e-9, "no orphaned bandwidth reservations");
        let aud = net.auditor().expect("enabled");
        prop_assert!(aud.checks() > 0);
        prop_assert!(aud.is_clean(), "{}", aud.summary());
    }

    /// An aggressively shedding controller (hair-trigger headroom and
    /// patience) preempts sessions mid-traffic without leaking anything:
    /// flit conservation holds, every VC slot and reservation frees, and
    /// the auditor stays clean.
    #[test]
    fn preemption_under_load_is_leak_free(
        seed in any::<u64>(),
        pairs in prop::collection::vec((0u16..9, 0u16..9, 0usize..5), 4..24),
    ) {
        let mut net = mesh_net(seed ^ 0x5ED);
        let policy = AdmitPolicy::default()
            .headroom(0.05)
            .low_watermark(0.01)
            .shed_patience(2)
            .shed_batch(2);
        let mut ctl = AdmissionController::new(policy);
        let mut live: Vec<SessionId> = Vec::new();
        for &(a, b, rate) in &pairs {
            if a == b {
                continue;
            }
            let class = QosClass::Cbr {
                rate: Bandwidth::from_mbps(*RATES_MBPS.get(rate).expect("index drawn in range")),
            };
            if let Some(id) = ctl.request(&mut net, NodeId(a), NodeId(b), class).session() {
                live.push(id);
            }
        }
        let mut injected = 0u64;
        for t in 0..600u64 {
            let now = Cycles(t);
            if t % 4 == 0 {
                for &id in &live {
                    if let Some(conn) = ctl.sessions().conn(id) {
                        if net.can_inject(conn) {
                            net.inject(conn, now).expect("checked");
                            injected += 1;
                        }
                    }
                }
            }
            let report = net.step(now);
            let (_, preempted) = ctl.service(&mut net, &report, now);
            for p in &preempted {
                live.retain(|&id| id != p.session);
            }
        }
        // Close the survivors and drain the in-flight tail.
        for id in live.drain(..) {
            ctl.close(&mut net, id);
        }
        for t in 600..900u64 {
            let report = net.step(Cycles(t));
            ctl.service(&mut net, &report, Cycles(t));
        }
        let stats = net.stats().clone();
        prop_assert_eq!(
            stats.flits_delivered + stats.flits_lost,
            injected,
            "every flit delivered or accounted lost across preemptions"
        );
        prop_assert_eq!(stats.ghost_releases, 0);
        prop_assert_eq!(total_reservations(&net), 0, "no orphaned VC slots");
        prop_assert!(max_book_load(&net) <= 1e-9, "no orphaned bandwidth reservations");
        let aud = net.auditor().expect("enabled");
        prop_assert!(aud.checks() > 0);
        prop_assert!(aud.is_clean(), "{}", aud.summary());
    }
}
