//! Property tests over the recovery policy's backoff schedule and the
//! fault-plan normalization — gaps called out by the conformance-harness
//! work (the harness leans on both being exactly right).

use mmr_net::{FaultPlan, NodeId, RecoveryPolicy};
use mmr_core::PortId;
use mmr_sim::Cycles;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The backoff schedule is monotonically non-decreasing in the attempt
    /// number: a later retry never waits less than an earlier one.
    #[test]
    fn backoff_is_monotonic(
        base in 0u64..1_000,
        max in 0u64..100_000,
        attempts in 2u32..40
    ) {
        let policy = RecoveryPolicy {
            base_backoff: Cycles(base),
            max_backoff: Cycles(max),
            ..RecoveryPolicy::default()
        };
        for a in 1..attempts {
            let earlier = policy.backoff_for(a);
            let later = policy.backoff_for(a + 1);
            prop_assert!(
                later >= earlier,
                "attempt {a}: {earlier:?} then {:?} shrank", later
            );
        }
    }

    /// Every backoff is bounded by `max_backoff`, the first attempt is
    /// immediate, and the second waits exactly the base backoff (when it
    /// fits the cap) — including at shift counts that would overflow a
    /// `u64` without saturation.
    #[test]
    fn backoff_is_bounded_and_anchored(
        base in 0u64..1_000,
        max in 0u64..100_000,
        attempt in 0u32..200
    ) {
        let policy = RecoveryPolicy {
            base_backoff: Cycles(base),
            max_backoff: Cycles(max),
            ..RecoveryPolicy::default()
        };
        prop_assert_eq!(policy.backoff_for(0), Cycles::ZERO);
        prop_assert_eq!(policy.backoff_for(1), Cycles::ZERO);
        prop_assert_eq!(policy.backoff_for(2), Cycles(base.min(max)));
        prop_assert!(policy.backoff_for(attempt) <= Cycles(max));
    }

    /// `FaultPlan::normalized` is idempotent: normalizing a normalized
    /// plan is a no-op, for any well-formed event soup.
    #[test]
    fn normalization_is_idempotent(
        events in prop::collection::vec(
            (0u64..10_000, 0u16..16, 0u8..8, 0u8..4),
            0..40
        )
    ) {
        let mut plan = FaultPlan::new();
        let mut failed: Vec<(u16, u8)> = Vec::new();
        for (at, node, port, kind) in events {
            let (n, p) = (NodeId(node), PortId(port));
            match kind {
                // A plan failing the same wire twice without a repair is
                // rejected by normalization; keep generated plans
                // well-formed the same way the scenario generator does.
                0 if !failed.contains(&(node, port)) => {
                    failed.push((node, port));
                    plan = plan.fail_at(Cycles(at), n, p);
                }
                1 => plan = plan.corrupt_at(Cycles(at), n, p),
                2 => plan = plan.drop_at(Cycles(at), n, p),
                _ => {}
            }
        }
        let once = plan.normalized().expect("generated plans are well-formed");
        let twice = once.clone().normalized().expect("normalized plans stay well-formed");
        let a: Vec<_> = once.events().copied().collect();
        let b: Vec<_> = twice.events().copied().collect();
        prop_assert_eq!(a, b);
    }
}
