//! Property wall for the generalized routing layer: on every structured
//! fabric class, minimal and Valiant routing must be livelock-free (no
//! repeated `(node, ctx)` state), reach the destination within the
//! documented hop bound, keep VC classes non-decreasing along the walk
//! (the escape-ordering that underwrites deadlock freedom), and agree
//! with up*/down* on reachability over the same wires.
//!
//! The sweep drives 10 000 seeded `(src, dst)` pairs per fabric per
//! algorithm — deterministic (seeded, not proptest) so a failure names
//! the exact pair.

use mmr_net::routing::RoutingAlgorithm;
use mmr_net::{
    Butterfly, Dragonfly, Hypercube, MinimalSpec, NodeId, Routing, RoutingSpec, Topology,
};
use mmr_sim::SeededRng;

const PAIRS: usize = 10_000;

/// The fabrics under test: one of each routed topology class, sized so
/// the 10k-pair sweep stays fast but no shape degenerates.
fn fabrics() -> Vec<(&'static str, Topology, MinimalSpec)> {
    vec![
        (
            "dragonfly(4,1,1)",
            Topology::dragonfly(4, 1, 1).expect("builds"),
            MinimalSpec::Dragonfly(Dragonfly::balanced(4, 1, 1)),
        ),
        (
            "dragonfly(6,1,2,g=10)",
            Dragonfly::with_groups(6, 1, 2, 10).build().expect("builds"),
            MinimalSpec::Dragonfly(Dragonfly::with_groups(6, 1, 2, 10)),
        ),
        (
            "butterfly(2,5)",
            Topology::butterfly(2, 5).expect("builds"),
            MinimalSpec::Butterfly(Butterfly::new(2, 5)),
        ),
        (
            "butterfly(3,3)",
            Topology::butterfly(3, 3).expect("builds"),
            MinimalSpec::Butterfly(Butterfly::new(3, 3)),
        ),
        (
            "hypercube(6)",
            Topology::hypercube(6).expect("builds"),
            MinimalSpec::Hypercube(Hypercube::new(6)),
        ),
    ]
}

/// Walks a packet from `src` to `dst` under `routing`, asserting the
/// livelock/deadlock-freedom properties at every step. Returns the hop
/// count.
fn checked_walk(
    label: &str,
    routing: &Routing,
    topology: &Topology,
    src: NodeId,
    dst: NodeId,
    salt: u64,
) -> usize {
    let mut current = src;
    let mut ctx = routing.initial_ctx(src, dst, salt);
    let mut hops = 0;
    let mut last_class = 0u8;
    let mut seen = std::collections::BTreeSet::new();
    while current != dst {
        // Livelock freedom: a deterministic router revisiting the same
        // (node, ctx) state would cycle forever.
        assert!(
            seen.insert((current, ctx)),
            "{label}: {src}->{dst} revisited state at {current} after {hops} hops"
        );
        let class = routing.vc_class(current, dst, ctx);
        assert!(
            class < routing.vc_classes(),
            "{label}: class {class} out of range"
        );
        assert!(
            class >= last_class,
            "{label}: {src}->{dst} VC class dropped {last_class}->{class} at {current}"
        );
        last_class = class;
        let hop = routing
            .next_hop(topology, current, dst, ctx)
            .unwrap_or_else(|| panic!("{label}: {src}->{dst} stuck at {current}"));
        assert!(
            topology.neighbors_iter(current).any(|(p, peer, _)| p == hop.port && peer == hop.next),
            "{label}: hop {current}->{} uses a wire that does not exist",
            hop.next
        );
        current = hop.next;
        ctx = hop.ctx;
        hops += 1;
        assert!(
            hops <= routing.hop_bound(),
            "{label}: {src}->{dst} exceeded hop bound {}",
            routing.hop_bound()
        );
    }
    hops
}

#[test]
fn minimal_routes_reach_within_bound_and_match_distance() {
    for (label, topology, minimal) in fabrics() {
        let routing = Routing::build(RoutingSpec { minimal, valiant_salt: None }, &topology);
        let mut rng = SeededRng::new(0x5ca1e ^ topology.nodes() as u64);
        let mut checked = 0;
        while checked < PAIRS {
            let src = NodeId(rng.index(topology.nodes()) as u16);
            let dst = NodeId(rng.index(topology.nodes()) as u16);
            if src == dst {
                continue;
            }
            let hops = checked_walk(label, &routing, &topology, src, dst, checked as u64);
            assert_eq!(
                hops,
                routing.distance(src, dst),
                "{label}: {src}->{dst} walk length vs routing distance"
            );
            checked += 1;
        }
    }
}

#[test]
fn valiant_routes_reach_within_doubled_bound() {
    for (label, topology, minimal) in fabrics() {
        let routing =
            Routing::build(RoutingSpec { minimal, valiant_salt: Some(0xDEC0) }, &topology);
        let mut rng = SeededRng::new(0x7a11 ^ topology.nodes() as u64);
        let mut checked = 0;
        while checked < PAIRS {
            let src = NodeId(rng.index(topology.nodes()) as u16);
            let dst = NodeId(rng.index(topology.nodes()) as u16);
            if src == dst {
                continue;
            }
            // Distinct salts draw distinct intermediates — the sweep
            // exercises both the detour and the degenerate straight path.
            checked_walk(label, &routing, &topology, src, dst, checked as u64);
            checked += 1;
        }
    }
}

/// up*/down* built over the same wires agrees on reachability: every pair
/// the structured algorithm routes, the fallback routes too (both
/// directions — its legality relation is not symmetric).
#[test]
fn updown_agrees_on_reachability() {
    for (label, topology, minimal) in fabrics() {
        let structured =
            Routing::build(RoutingSpec { minimal, valiant_salt: None }, &topology);
        let updown = Routing::build(RoutingSpec::up_down(), &topology);
        let mut rng = SeededRng::new(0x0b5e ^ topology.nodes() as u64);
        for i in 0..2_000 {
            let src = NodeId(rng.index(topology.nodes()) as u16);
            let dst = NodeId(rng.index(topology.nodes()) as u16);
            if src == dst {
                continue;
            }
            let s = structured.route(&topology, src, dst);
            let u = updown.route(&topology, src, dst);
            assert!(
                s.is_some() && u.is_some(),
                "{label}: pair {i} {src}->{dst} reachability disagrees \
                 (structured {:?}, updown {:?})",
                s.map(|r| r.len()),
                u.map(|r| r.len())
            );
        }
    }
}

/// The up*/down* fallback satisfies the same walk properties on the new
/// fabric classes it now backstops.
#[test]
fn updown_walks_are_loop_free_on_structured_fabrics() {
    for (label, topology, _) in fabrics() {
        let updown = Routing::build(RoutingSpec::up_down(), &topology);
        let mut rng = SeededRng::new(0xdd ^ topology.nodes() as u64);
        for i in 0..2_000u64 {
            let src = NodeId(rng.index(topology.nodes()) as u16);
            let dst = NodeId(rng.index(topology.nodes()) as u16);
            if src == dst {
                continue;
            }
            checked_walk(label, &updown, &topology, src, dst, i);
        }
    }
}
