//! Property tests over fault injection, repair, and recovery invariants.

use mmr_core::ids::PortId;
use mmr_core::router::RouterConfig;
use mmr_net::setup::cbr_mbps;
use mmr_net::{NetworkSim, NodeId, SetupStrategy, Topology, UpDownRouting};
use proptest::prelude::*;

/// Sum of router-local connection slots across the fabric.
fn total_reservations(net: &NetworkSim, nodes: u16) -> usize {
    (0..nodes).map(|n| net.router(NodeId(n)).connections()).sum()
}

/// Largest guaranteed-bandwidth load factor on any book in the fabric.
fn max_load_factor(net: &NetworkSim, nodes: u16, ports: u8) -> f64 {
    let mut max = 0.0f64;
    for n in 0..nodes {
        let router = net.router(NodeId(n));
        for p in 0..ports {
            let port = PortId(p);
            max = max.max(router.bandwidth_book(port).load_factor());
            max = max.max(router.input_bandwidth_book(port).load_factor());
        }
    }
    max
}

/// All router-to-router wires of the topology as failable endpoints.
fn wire_endpoints(net: &NetworkSim) -> Vec<(NodeId, PortId)> {
    net.topology().wires().iter().map(|w| w.a).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary interleavings of fail/repair/establish/teardown leak no VC
    /// slots and no bandwidth reservations: once every surviving connection
    /// is closed and all links repaired, every router and every
    /// `BandwidthBook` is back to its pre-campaign state.
    #[test]
    fn fault_campaigns_leak_nothing(
        seed in any::<u64>(),
        ops in prop::collection::vec((any::<u8>(), 0u16..9, 0u16..9, any::<u16>()), 1..80)
    ) {
        let mut net = NetworkSim::new(
            Topology::mesh2d(3, 3, 8).expect("topology wires within the port budget"),
            RouterConfig::paper_default().vcs_per_port(6).candidates(2).seed(seed),
        );
        prop_assert_eq!(total_reservations(&net, 9), 0);
        prop_assert_eq!(max_load_factor(&net, 9, 8), 0.0);
        let wires = wire_endpoints(&net);
        let baseline_wires = net.topology().wires().len();

        let mut live: Vec<mmr_net::NetConnectionId> = Vec::new();
        for (op, a, b, pick) in ops {
            match op % 4 {
                0 => {
                    // Establish (may fail under load or partition — fine).
                    if a != b {
                        if let Ok(conn) =
                            net.establish(NodeId(a), NodeId(b), cbr_mbps(124.0), SetupStrategy::Epb)
                        {
                            live.push(conn);
                        }
                    }
                }
                1 => {
                    // Teardown one live connection.
                    if !live.is_empty() {
                        let conn = live.swap_remove(usize::from(pick) % live.len());
                        net.teardown(conn).expect("was live");
                    }
                }
                2 => {
                    // Fail a wire; drop the connections it tore down.
                    let (node, port) = wires[usize::from(pick) % wires.len()];
                    if let Ok(broken) = net.fail_link(node, port) {
                        live.retain(|c| !broken.contains(c));
                    }
                }
                _ => {
                    // Repair a wire (no-op error if it is up).
                    let (node, port) = wires[usize::from(pick) % wires.len()];
                    let _ = net.repair_link(node, port);
                }
            }
        }

        // Drain the campaign: close every survivor, repair every link.
        for conn in live {
            net.teardown(conn).expect("was live");
        }
        for &(node, port) in &wires {
            let _ = net.repair_link(node, port);
        }
        prop_assert_eq!(total_reservations(&net, 9), 0, "VC slots leaked");
        let residue = max_load_factor(&net, 9, 8);
        prop_assert!(residue.abs() < 1e-9, "bandwidth reservation leaked: {residue}");
        prop_assert_eq!(net.live_topology().wires().len(), baseline_wires, "wires restored");
    }

    /// `repair_link` after `fail_link` restores full reachability on mesh
    /// and torus fabrics: the live topology regains every wire and the
    /// recomputed up*/down* routing reaches every pair again.
    #[test]
    fn repair_restores_reachability(
        seed in any::<u64>(),
        torus in any::<bool>(),
        cuts in prop::collection::vec(any::<u16>(), 1..6)
    ) {
        let topo = if torus {
            Topology::torus2d(3, 3, 8).expect("topology wires within the port budget")
        } else {
            Topology::mesh2d(3, 3, 8).expect("topology wires within the port budget")
        };
        let baseline_wires = topo.wires().len();
        let mut net = NetworkSim::new(
            topo,
            RouterConfig::paper_default().vcs_per_port(6).candidates(2).seed(seed),
        );
        let wires = wire_endpoints(&net);
        let mut downed: Vec<(NodeId, PortId)> = Vec::new();
        for pick in cuts {
            let (node, port) = wires[usize::from(pick) % wires.len()];
            if net.fail_link(node, port).is_ok() {
                downed.push((node, port));
            }
        }
        prop_assert!(!downed.is_empty());
        prop_assert_eq!(net.live_topology().wires().len(), baseline_wires - downed.len());
        for (node, port) in downed {
            net.repair_link(node, port).expect("was failed");
        }
        prop_assert_eq!(net.live_topology().wires().len(), baseline_wires);
        let routing = UpDownRouting::new(net.live_topology());
        for a in 0..9u16 {
            for b in 0..9u16 {
                prop_assert!(
                    routing.legal_distance(NodeId(a), NodeId(b), None) != usize::MAX,
                    "{a}->{b} unroutable after full repair"
                );
            }
        }
        // The repaired fabric admits connections again end to end.
        let conn = net
            .establish(NodeId(0), NodeId(8), cbr_mbps(124.0), SetupStrategy::Epb)
            .expect("repaired fabric has capacity");
        net.teardown(conn).expect("was live");
    }
}
