//! Property wall for the HPC-scale topology builders: seeded parameter
//! sweeps of dragonfly, butterfly, and hypercube fabrics check closed-form
//! node/link counts, degree bounds, wire symmetry, connectivity, and that
//! the BFS diameter never exceeds the builder's documented bound. The
//! duplicate-link rejection satellite is covered at the bottom.

use mmr_net::{Butterfly, Dragonfly, Hypercube, NodeId, Topology, TopologyError};
use mmr_sim::SeededRng;
use proptest::prelude::*;

/// BFS eccentricity of `from` (max hop distance to any reachable node).
fn eccentricity(t: &Topology, from: NodeId) -> usize {
    let mut dist = vec![usize::MAX; t.nodes()];
    if let Some(d) = dist.get_mut(from.index()) {
        *d = 0;
    }
    let mut queue = std::collections::VecDeque::from([from]);
    let mut max = 0;
    while let Some(n) = queue.pop_front() {
        let base = dist.get(n.index()).copied().unwrap_or(usize::MAX);
        for (_, peer, _) in t.neighbors_iter(n) {
            if dist.get(peer.index()).copied() == Some(usize::MAX) {
                if let Some(d) = dist.get_mut(peer.index()) {
                    *d = base + 1;
                    max = max.max(base + 1);
                }
                queue.push_back(peer);
            }
        }
    }
    max
}

/// Checks the invariants every structured fabric shares: expected counts,
/// full symmetry of the wire list, a terminal port on every router,
/// connectivity, and the closed-form diameter bound.
fn check_fabric(t: &Topology, nodes: usize, links: usize, diameter_bound: usize) {
    assert_eq!(t.nodes(), nodes, "node count");
    assert_eq!(t.wires().len(), links, "link count");
    assert!(t.is_connected(), "fabric is connected");
    for w in t.wires() {
        let (na, pa) = w.a;
        let (nb, pb) = w.b;
        // Every wire is visible from both endpoints on the same ports.
        assert!(
            t.neighbors_iter(na).any(|(p, peer, pp)| p == pa && peer == nb && pp == pb),
            "wire {na}:{pa} -> {nb}:{pb} missing from a-side adjacency"
        );
        assert!(
            t.neighbors_iter(nb).any(|(p, peer, pp)| p == pb && peer == na && pp == pa),
            "wire {nb}:{pb} -> {na}:{pa} missing from b-side adjacency"
        );
    }
    for n in 0..nodes {
        let node = NodeId(n as u16);
        assert!(t.terminal_port(node).is_some(), "router {n} keeps a terminal port");
        assert!(
            t.degree(node) < usize::from(t.ports_per_node()),
            "router {n} degree leaves room for its terminal"
        );
    }
    // Exact diameter from a BFS at every node — the sweeps keep fabrics
    // small enough for the quadratic scan.
    let diameter =
        (0..nodes).map(|n| eccentricity(t, NodeId(n as u16))).max().unwrap_or(0);
    assert!(
        diameter <= diameter_bound,
        "BFS diameter {diameter} exceeds closed-form bound {diameter_bound}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Balanced and reduced-group dragonflies: `g·a` routers, local links
    /// `g·a(a-1)/2`, one global link per group pair, degree `a-1+h`
    /// bounded, diameter ≤ 3.
    #[test]
    fn dragonfly_sweeps_hold_closed_forms(
        a in 2u16..7,
        h in 1u16..3,
        p in 1u16..3,
        group_fraction in 0.0f64..1.0,
    ) {
        let max_groups = a * h + 1;
        // Sweep the full balanced shape and reduced group counts alike.
        let groups = 2 + ((f64::from(max_groups - 2) * group_fraction) as u16);
        let shape = Dragonfly::with_groups(a, p, h, groups);
        let t = shape.build().expect("dragonfly wires within budget");
        let g = usize::from(groups);
        let ra = usize::from(a);
        check_fabric(
            &t,
            g * ra,
            g * ra * (ra - 1) / 2 + g * (g - 1) / 2,
            shape.diameter_bound(),
        );
        for n in 0..t.nodes() {
            let deg = t.degree(NodeId(n as u16));
            prop_assert!(
                deg <= ra - 1 + usize::from(h),
                "router degree {deg} exceeds a-1+h"
            );
            prop_assert!(deg >= ra - 1, "local group is fully connected");
        }
    }

    /// k-ary n-fly butterflies: `stages · k^(stages-1)` switches,
    /// `(stages-1) · rows · k` wires, boundary degree `k`, interior `2k`,
    /// diameter ≤ 2(stages-1).
    #[test]
    fn butterfly_sweeps_hold_closed_forms(k in 2u16..5, stages in 2u16..5) {
        let shape = Butterfly::new(k, stages);
        let t = shape.build().expect("butterfly wires within budget");
        check_fabric(&t, shape.nodes(), shape.links(), shape.diameter_bound());
        for s in 0..usize::from(stages) {
            for row in 0..shape.rows() {
                let deg = t.degree(shape.node(s, row));
                let expected = if s == 0 || s + 1 == usize::from(stages) {
                    usize::from(k)
                } else {
                    2 * usize::from(k)
                };
                prop_assert_eq!(deg, expected, "stage {} degree", s);
            }
        }
    }

    /// Hypercubes: `2^dim` routers of degree `dim`, `dim · 2^(dim-1)`
    /// wires, diameter ≤ dim.
    #[test]
    fn hypercube_sweeps_hold_closed_forms(dim in 1u32..8) {
        let shape = Hypercube::new(dim);
        let t = shape.build().expect("hypercube wires within budget");
        check_fabric(&t, 1 << dim, usize::try_from(dim).unwrap() << (dim - 1), shape.diameter_bound());
        for n in 0..t.nodes() {
            prop_assert_eq!(t.degree(NodeId(n as u16)), dim as usize);
        }
    }

    /// The irregular builder (and `connect_next_free` generally) rejects a
    /// second wire between the same pair with the typed error instead of
    /// silently double-wiring.
    #[test]
    fn duplicate_links_are_rejected(seed in any::<u64>()) {
        let mut rng = SeededRng::new(seed);
        let mut t = Topology::irregular(10, 8, 3, &mut rng).expect("irregular fabric builds");
        // Every existing wire is a duplicate now, whatever free ports remain.
        let wires: Vec<_> = t.wires().to_vec();
        for w in wires.iter().take(4) {
            let (a, b) = (w.a.0, w.b.0);
            prop_assert_eq!(
                t.connect_next_free(a, b),
                Err(TopologyError::DuplicateLink { a, b })
            );
            // Symmetric: order of endpoints does not matter.
            prop_assert_eq!(
                t.connect_next_free(b, a),
                Err(TopologyError::DuplicateLink { a: b, b: a })
            );
        }
    }
}

/// The three convenience constructors agree with their builder structs.
#[test]
fn convenience_constructors_match_builders() {
    let a = Topology::dragonfly(4, 1, 1).expect("builds");
    let b = Dragonfly::balanced(4, 1, 1).build().expect("builds");
    assert_eq!(a.nodes(), b.nodes());
    assert_eq!(a.wires().len(), b.wires().len());

    let a = Topology::butterfly(2, 4).expect("builds");
    let b = Butterfly::new(2, 4).build().expect("builds");
    assert_eq!(a.nodes(), b.nodes());
    assert_eq!(a.wires().len(), b.wires().len());

    let a = Topology::hypercube(5).expect("builds");
    let b = Hypercube::new(5).build().expect("builds");
    assert_eq!(a.nodes(), b.nodes());
    assert_eq!(a.wires().len(), b.wires().len());
}

/// The thousand-node shapes the scale wall simulates wire correctly; the
/// full BFS sweep is reserved for the small shapes above, but counts,
/// symmetry spot checks, and connectivity still hold at size.
#[test]
fn thousand_node_shapes_wire_within_budget() {
    let d = Dragonfly::balanced(32, 1, 1);
    let t = d.build().expect("1056-node dragonfly builds");
    assert_eq!(t.nodes(), 1056);
    assert_eq!(t.wires().len(), d.local_links() + d.global_links());
    assert!(t.is_connected());

    let b = Butterfly::new(2, 8);
    let t = b.build().expect("1024-node butterfly builds");
    assert_eq!(t.nodes(), 1024);
    assert_eq!(t.wires().len(), b.links());
    assert!(t.is_connected());
}
