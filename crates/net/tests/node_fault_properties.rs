//! Property tests over whole-router failure and repair: arbitrary
//! fail/repair interleavings and seeded node campaigns must leak nothing
//! (VC slots, credits, bandwidth reservations, LLR ledger entries), keep
//! the conservation auditor clean, and restore full reachability once
//! every router is back.

use mmr_core::ids::PortId;
use mmr_core::router::RouterConfig;
use mmr_core::{AuditConfig, LlrConfig};
use mmr_net::setup::cbr_mbps;
use mmr_net::{FaultInjector, FaultPlan, NetConnectionId, NetworkSim, NodeId, SetupStrategy, Topology};
use mmr_sim::Cycles;
use proptest::prelude::*;

const NODES: u16 = 9;
const PORTS: u8 = 8;

fn mesh_net(seed: u64) -> NetworkSim {
    let mut net = NetworkSim::new(
        Topology::mesh2d(3, 3, PORTS).expect("topology wires within the port budget"),
        RouterConfig::paper_default().vcs_per_port(6).candidates(2).seed(seed),
    );
    net.enable_audit(AuditConfig::default());
    net
}

fn total_reservations(net: &NetworkSim) -> usize {
    (0..NODES).map(|n| net.router(NodeId(n)).connections()).sum()
}

fn max_load_factor(net: &NetworkSim) -> f64 {
    let mut max = 0.0f64;
    for n in 0..NODES {
        let router = net.router(NodeId(n));
        for p in 0..PORTS {
            let port = PortId(p);
            max = max.max(router.bandwidth_book(port).load_factor());
            max = max.max(router.input_bandwidth_book(port).load_factor());
        }
    }
    max
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary interleavings of node fail/repair, session setup, traffic,
    /// and stepping leak nothing: after healing every router and closing
    /// every surviving connection, all VC slots and bandwidth reservations
    /// are free, the auditor is clean, every injected flit is delivered or
    /// accounted lost, and the up*/down* graph reaches every pair again.
    #[test]
    fn node_fail_repair_interleavings_are_leak_free(
        seed in any::<u64>(),
        ops in prop::collection::vec((0u16..9, 0u16..9, 0u8..4), 1..40)
    ) {
        let mut net = mesh_net(seed);
        let mut live: Vec<NetConnectionId> = Vec::new();
        let mut injected = 0u64;
        let mut t = 0u64;
        for (a, b, op) in ops {
            match op {
                0 => {
                    if a != b {
                        if let Ok(c) = net.establish(
                            NodeId(a), NodeId(b), cbr_mbps(10.0), SetupStrategy::Epb,
                        ) {
                            live.push(c);
                        }
                    }
                }
                1 => {
                    if let Ok(broken) = net.fail_node(NodeId(a)) {
                        live.retain(|c| !broken.contains(c));
                    }
                }
                2 => {
                    let _ = net.repair_node(NodeId(a));
                }
                _ => {
                    if let Some(&c) = live.first() {
                        if net.can_inject(c) {
                            net.inject(c, Cycles(t)).expect("checked");
                            injected += 1;
                        }
                    }
                    for _ in 0..4 {
                        net.step(Cycles(t));
                        t += 1;
                    }
                }
            }
        }
        // Heal every router, drain surviving traffic, then settle accounts.
        for n in 0..NODES {
            let _ = net.repair_node(NodeId(n));
        }
        for _ in 0..200 {
            net.step(Cycles(t));
            t += 1;
        }
        let stats = net.stats().clone();
        prop_assert_eq!(
            stats.flits_delivered + stats.flits_lost,
            injected,
            "every flit delivered or accounted lost"
        );
        prop_assert_eq!(stats.ghost_releases, 0);
        // Close the survivors; nothing may remain reserved anywhere.
        for c in live.drain(..) {
            net.teardown(c).expect("tracked as live");
        }
        for _ in 0..32 {
            net.step(Cycles(t));
            t += 1;
        }
        prop_assert_eq!(total_reservations(&net), 0, "no orphaned VC slots");
        prop_assert!(max_load_factor(&net) == 0.0, "no orphaned bandwidth reservations");
        // Reachability is fully restored after the last repair.
        for a in 0..NODES {
            for b in 0..NODES {
                prop_assert!(
                    net.routing()
                        .up_down()
                        .expect("up*/down* spec")
                        .legal_distance(NodeId(a), NodeId(b), None)
                        != usize::MAX,
                    "{a}->{b} unroutable after full repair"
                );
            }
        }
        let aud = net.auditor().expect("enabled");
        prop_assert!(aud.checks() > 0);
        prop_assert!(aud.is_clean(), "{}", aud.summary());
    }

    /// A seeded node-fault campaign under LLR: every planned router outage
    /// fires and heals, credits and LLR ledger entries reconcile (auditor
    /// clean), flit conservation holds exactly, and the healed fabric
    /// accepts new sessions between any terminal pair.
    #[test]
    fn seeded_node_campaigns_conserve_and_heal(
        seed in any::<u64>(),
        node_faults in 1usize..3,
    ) {
        let mut net = mesh_net(seed ^ 0xA11);
        net.enable_llr(LlrConfig::default());
        let pairs = [(0u16, 8u16), (2, 6), (3, 5), (1, 7), (6, 2), (8, 0)];
        let conns: Vec<NetConnectionId> = pairs
            .iter()
            .filter_map(|&(a, b)| {
                net.establish(NodeId(a), NodeId(b), cbr_mbps(64.0), SetupStrategy::Epb).ok()
            })
            .collect();
        prop_assert!(!conns.is_empty());
        let plan = FaultPlan::seeded_node_campaign(
            net.topology(), seed, node_faults, 100..600, Cycles(150),
        );
        let mut injector = FaultInjector::new(plan).expect("seeded campaigns are consistent");
        let mut injected = 0u64;
        for t in 0..1_200u64 {
            let now = Cycles(t);
            injector.poll(&mut net, now);
            if t % 8 == 0 {
                for &c in &conns {
                    if net.connection(c).is_some() && net.can_inject(c) {
                        net.inject(c, now).expect("checked");
                        injected += 1;
                    }
                }
            }
            net.step(now);
        }
        // Stop injecting and let the in-flight tail drain before settling.
        for t in 1_200..1_500u64 {
            net.step(Cycles(t));
        }
        let stats = net.stats().clone();
        // Overlapping strikes may be skipped at plan time, but the first
        // always lands, and every fired outage must heal within the run.
        prop_assert!(stats.nodes_failed >= 1, "at least one outage fired");
        prop_assert!(stats.nodes_failed <= node_faults as u64);
        prop_assert_eq!(stats.nodes_failed, stats.nodes_repaired, "every outage healed in-run");
        prop_assert_eq!(
            stats.flits_delivered + stats.flits_lost,
            injected,
            "conservation across the fail/repair campaign"
        );
        prop_assert_eq!(stats.ghost_releases, 0);
        for n in 0..NODES {
            prop_assert!(net.node_ok(NodeId(n)), "node {n} healed");
        }
        // The healed fabric still places new sessions everywhere.
        let extra = net
            .establish(NodeId(0), NodeId(8), cbr_mbps(64.0), SetupStrategy::Epb);
        prop_assert!(extra.is_ok(), "post-campaign setup: {extra:?}");
        let aud = net.auditor().expect("enabled");
        prop_assert!(aud.checks() > 0);
        prop_assert!(aud.is_clean(), "{}", aud.summary());
    }
}
