//! Measurement machinery for the evaluation.
//!
//! The paper's two headline metrics (§5) are:
//!
//! * **Delay** — "the difference between the times a flit is ready to be
//!   transmitted through the switch and the time it actually leaves the
//!   switch", reported in microseconds (Figure 4/5) or flit cycles.
//! * **Jitter** — "the difference in the delays of successive flits on a
//!   connection", reported in flit cycles (Figures 3/5) and "averaged over a
//!   large range of connection speeds", i.e. each connection contributes its
//!   own mean jitter and connections are weighted equally.
//!
//! [`DelayJitterRecorder`] implements exactly that, plus a flit-weighted
//! variant for sensitivity analysis. [`Warmup`] gates measurement until
//! steady state, [`SweepTable`] assembles the figure series.

use std::fmt;

use crate::units::Cycles;

/// Streaming count/mean/variance/min/max over `f64` samples (Welford).
///
/// # Example
///
/// ```
/// use mmr_sim::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [1.0, 2.0, 3.0] {
///     acc.record(x);
/// }
/// assert_eq!(acc.mean(), 2.0);
/// assert_eq!(acc.count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 when fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-width-bin histogram over non-negative samples.
///
/// Values at or above the top edge land in the overflow bin so tails are
/// never silently dropped.
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: f64,
    bins: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of `bin_width` each.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not positive or `bins` is zero.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        // mmr-lint: allow(P-TRANS, reason="construction-time config validation; unreachable from the per-cycle path")
        assert!(bin_width > 0.0, "bin width must be positive");
        assert!(bins > 0, "need at least one bin"); // mmr-lint: allow(P-TRANS, reason="construction-time config validation; unreachable from the per-cycle path")
        Histogram { bin_width, bins: vec![0; bins], overflow: 0, total: 0 }
    }

    /// Records one sample. Negative samples count into bin 0.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        let idx = (x.max(0.0) / self.bin_width) as usize;
        if idx < self.bins.len() {
            // mmr-lint: allow(P-TRANS, reason="idx is range-checked against the bin count on the line above")
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Count of samples beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate quantile (`q` in `[0,1]`) using bin upper edges.
    /// Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as f64 + 1.0) * self.bin_width);
            }
        }
        Some(self.bins.len() as f64 * self.bin_width)
    }
}

/// Identifier used by the recorder to tell connections apart.
pub type FlowId = u32;

/// Tail percentiles of a metric: the p50/p95/p99 columns the overload
/// experiments report instead of means (tails are what admission control
/// protects).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailSummary {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl TailSummary {
    /// Reads p50/p95/p99 from a histogram; `None` when it is empty.
    pub fn from_histogram(h: &Histogram) -> Option<TailSummary> {
        Some(TailSummary {
            p50: h.quantile(0.50)?,
            p95: h.quantile(0.95)?,
            p99: h.quantile(0.99)?,
        })
    }
}

/// Geometry of the recorder's tail histograms: 1-cycle bins up to 4096
/// cycles, overflow beyond. The quantile of an overflowing tail saturates
/// at the top edge, so a pathological run reports "≥ 4096" rather than a
/// made-up number — and never allocates in the hot path.
const TAIL_BIN_WIDTH: f64 = 1.0;
const TAIL_BINS: usize = 4096;

/// Per-connection delay/jitter bookkeeping implementing the paper's metrics.
///
/// Feed it `(flow, delay_in_cycles)` for every flit that leaves the switch;
/// read back mean delay (flit-weighted, like Figure 4) and mean jitter
/// (connection-weighted mean of |Δdelay| between successive flits, like
/// Figure 3).
#[derive(Debug, Clone)]
pub struct DelayJitterRecorder {
    delay: Accumulator,
    /// Per-flow state, indexed directly by [`FlowId`] (flow ids are dense,
    /// router-assigned connection ids). Ascending-index iteration preserves
    /// the ascending-key order of the `BTreeMap` this replaced, so every
    /// float reduction visits flows in the same order.
    per_flow: Vec<Option<FlowJitter>>,
    flows: usize,
    /// Fixed-bin delay histogram (all flits pooled) for tail percentiles.
    delay_hist: Histogram,
    /// Fixed-bin |Δdelay| histogram (flit-weighted, all flows pooled).
    jitter_hist: Histogram,
}

impl Default for DelayJitterRecorder {
    fn default() -> Self {
        DelayJitterRecorder {
            delay: Accumulator::new(),
            per_flow: Vec::new(),
            flows: 0,
            delay_hist: Histogram::new(TAIL_BIN_WIDTH, TAIL_BINS),
            jitter_hist: Histogram::new(TAIL_BIN_WIDTH, TAIL_BINS),
        }
    }
}

#[derive(Debug, Clone)]
struct FlowJitter {
    first_delay: f64,
    last_delay: f64,
    jitter: Accumulator,
}

impl DelayJitterRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that a flit of `flow` experienced `delay` flit cycles of
    /// switch delay.
    // mmr-lint: hot
    pub fn record(&mut self, flow: FlowId, delay: Cycles) {
        let d = delay.as_f64();
        self.delay.record(d);
        self.delay_hist.record(d);
        let idx = flow as usize;
        if idx >= self.per_flow.len() {
            // mmr-lint: allow(A-PUSH, reason="amortized: grows once per newly seen flow, then stays flat for the run")
            self.per_flow.resize(idx + 1, None);
        }
        // mmr-lint: allow(P-TRANS, reason="the per-flow table was just resized past idx when the flow is new")
        match &mut self.per_flow[idx] {
            Some(f) => {
                let dj = (d - f.last_delay).abs();
                f.jitter.record(dj);
                self.jitter_hist.record(dj);
                f.last_delay = d;
            }
            slot => {
                *slot =
                    Some(FlowJitter { first_delay: d, last_delay: d, jitter: Accumulator::new() });
                self.flows += 1;
            }
        }
    }

    /// Flit-weighted mean delay in flit cycles (the Figure 4 y-axis before
    /// the cycles→µs conversion).
    pub fn mean_delay_cycles(&self) -> f64 {
        self.delay.mean()
    }

    /// Largest single-flit delay observed, in cycles.
    pub fn max_delay_cycles(&self) -> f64 {
        self.delay.max().unwrap_or(0.0)
    }

    /// Total flits recorded.
    pub fn flits(&self) -> u64 {
        self.delay.count()
    }

    /// Connection-weighted mean jitter in flit cycles (the Figure 3 y-axis):
    /// each connection contributes the mean |Δdelay| of its successive
    /// flits, and connections with at least two flits are averaged equally.
    pub fn mean_jitter_cycles(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u64;
        for f in self.per_flow.iter().flatten() {
            if f.jitter.count() > 0 {
                sum += f.jitter.mean();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Flit-weighted mean jitter (every |Δdelay| sample weighted equally),
    /// for sensitivity analysis against the connection-weighted metric.
    pub fn mean_jitter_cycles_flit_weighted(&self) -> f64 {
        let mut all = Accumulator::new();
        for f in self.per_flow.iter().flatten() {
            all.merge(&f.jitter);
        }
        all.mean()
    }

    /// Connection-weighted mean *signed* successive-delay difference. The
    /// signed differences telescope, so per connection this is
    /// `(last_delay − first_delay) / (flits − 1)`: a drift indicator that is
    /// ≈ 0 for a scheduler in steady state and grows when queues build over
    /// the measurement window (an alternative literal reading of the
    /// paper's "difference in the delays of successive flits").
    pub fn mean_drift_cycles(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u64;
        for f in self.per_flow.iter().flatten() {
            if f.jitter.count() > 0 {
                sum += (f.last_delay - f.first_delay) / f.jitter.count() as f64;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// p50/p95/p99 switch delay in cycles; `None` before the first flit.
    /// Values saturate at the histogram's 4096-cycle top edge.
    pub fn delay_tail(&self) -> Option<TailSummary> {
        TailSummary::from_histogram(&self.delay_hist)
    }

    /// p50/p95/p99 of the flit-weighted |Δdelay| jitter samples; `None`
    /// until some flow has produced two flits.
    pub fn jitter_tail(&self) -> Option<TailSummary> {
        TailSummary::from_histogram(&self.jitter_hist)
    }

    /// Mean jitter of one connection, if it produced at least two flits.
    pub fn flow_jitter(&self, flow: FlowId) -> Option<f64> {
        let f = self.per_flow.get(flow as usize)?.as_ref()?;
        (f.jitter.count() > 0).then(|| f.jitter.mean())
    }

    /// Number of connections that have produced at least one flit.
    pub fn flows(&self) -> usize {
        self.flows
    }
}

/// Warm-up gating: measurement starts only after the warm-up window.
///
/// The paper runs "until steady state was reached and statistics gathered
/// over approximately 100,000 router cycles".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Warmup {
    until: Cycles,
}

impl Warmup {
    /// Creates a warm-up window ending at `until`.
    pub fn until(until: Cycles) -> Self {
        Warmup { until }
    }

    /// Whether cycle `now` is inside the measured region.
    pub fn measuring(self, now: Cycles) -> bool {
        now >= self.until
    }
}

/// One measured point of a figure series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The x value (offered load for every figure in the paper).
    pub x: f64,
    /// The y value (delay or jitter).
    pub y: f64,
}

/// A named series of (x, y) points plus a table assembler, used by the
/// benchmark harness to print figures in the same layout as the paper.
///
/// # Example
///
/// ```
/// use mmr_sim::SweepTable;
///
/// let mut t = SweepTable::new("jitter (cycles)");
/// t.push("biased", 0.5, 0.1);
/// t.push("fixed", 0.5, 0.4);
/// let text = t.render();
/// assert!(text.contains("biased"));
/// assert!(text.contains("0.5"));
/// ```
#[derive(Debug, Clone)]
pub struct SweepTable {
    metric: String,
    series: Vec<(String, Vec<SweepPoint>)>,
}

impl SweepTable {
    /// Creates an empty table for a metric (the y-axis label).
    pub fn new(metric: impl Into<String>) -> Self {
        SweepTable { metric: metric.into(), series: Vec::new() }
    }

    /// Appends a point to the named series, creating the series on first use.
    pub fn push(&mut self, series: &str, x: f64, y: f64) {
        match self.series.iter_mut().find(|(name, _)| name == series) {
            Some((_, pts)) => pts.push(SweepPoint { x, y }),
            None => self.series.push((series.to_owned(), vec![SweepPoint { x, y }])),
        }
    }

    /// The metric label.
    pub fn metric(&self) -> &str {
        &self.metric
    }

    /// Series names in insertion order.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.iter().map(|(n, _)| n.as_str())
    }

    /// Points of one series.
    pub fn series(&self, name: &str) -> Option<&[SweepPoint]> {
        self.series.iter().find(|(n, _)| n == name).map(|(_, p)| p.as_slice())
    }

    /// Renders an aligned text table: one row per x, one column per series.
    pub fn render(&self) -> String {
        let mut xs: Vec<f64> = Vec::new();
        for (_, pts) in &self.series {
            for p in pts {
                if !xs.iter().any(|x| (x - p.x).abs() < 1e-9) {
                    xs.push(p.x);
                }
            }
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("loads are finite"));

        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.metric));
        out.push_str(&format!("{:>10}", "load"));
        for (name, _) in &self.series {
            out.push_str(&format!(" {name:>14}"));
        }
        out.push('\n');
        for x in xs {
            out.push_str(&format!("{x:>10.3}"));
            for (_, pts) in &self.series {
                match pts.iter().find(|p| (p.x - x).abs() < 1e-9) {
                    Some(p) => out.push_str(&format!(" {:>14.4}", p.y)),
                    None => out.push_str(&format!(" {:>14}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for SweepTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_moments() {
        let mut acc = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            acc.record(x);
        }
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        assert!((acc.variance() - 4.0).abs() < 1e-12);
        assert!((acc.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(acc.min(), Some(2.0));
        assert_eq!(acc.max(), Some(9.0));
    }

    #[test]
    fn accumulator_empty_is_benign() {
        let acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.min(), None);
        assert_eq!(acc.max(), None);
    }

    #[test]
    fn accumulator_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37).collect();
        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &xs[..37] {
            left.record(x);
        }
        for &x in &xs[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(1.0, 4);
        for x in [0.5, 1.5, 1.7, 3.9, 4.0, 100.0] {
            h.record(x);
        }
        assert_eq!(h.bin(0), 1);
        assert_eq!(h.bin(1), 2);
        assert_eq!(h.bin(3), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(1.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0); // 0.0..9.9 uniformly
        }
        let q50 = h.quantile(0.5).expect("non-empty");
        assert!((q50 - 5.0).abs() <= 1.0, "median approx {q50}");
        assert!(Histogram::new(1.0, 2).quantile(0.5).is_none());
    }

    #[test]
    fn delay_and_jitter_basic() {
        let mut r = DelayJitterRecorder::new();
        // Flow 0: delays 1, 3, 2 -> jitter samples |2|, |1| -> mean 1.5.
        r.record(0, Cycles(1));
        r.record(0, Cycles(3));
        r.record(0, Cycles(2));
        // Flow 1: constant delay -> zero jitter.
        r.record(1, Cycles(5));
        r.record(1, Cycles(5));
        assert_eq!(r.flits(), 5);
        assert_eq!(r.flows(), 2);
        assert!((r.mean_delay_cycles() - 16.0 / 5.0).abs() < 1e-12);
        assert!((r.flow_jitter(0).expect("two+ flits") - 1.5).abs() < 1e-12);
        assert_eq!(r.flow_jitter(1), Some(0.0));
        // Connection-weighted: (1.5 + 0.0) / 2.
        assert!((r.mean_jitter_cycles() - 0.75).abs() < 1e-12);
        // Drift: flow 0 went 1 -> 2 over 2 steps (+0.5), flow 1 is flat.
        assert!((r.mean_drift_cycles() - 0.25).abs() < 1e-12);
        // Flit-weighted: (2 + 1 + 0) / 3.
        assert!((r.mean_jitter_cycles_flit_weighted() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_percentiles_track_the_distribution() {
        let mut r = DelayJitterRecorder::new();
        assert_eq!(r.delay_tail(), None);
        assert_eq!(r.jitter_tail(), None);
        // 100 flits on one flow with delays 0..99: p50 ≈ 50, p99 ≈ 99,
        // and |Δdelay| is constantly 1 so the jitter tail collapses.
        for d in 0..100 {
            r.record(0, Cycles(d));
        }
        let delay = r.delay_tail().expect("non-empty");
        assert!((delay.p50 - 50.0).abs() <= 1.0, "p50 {}", delay.p50);
        assert!((delay.p95 - 95.0).abs() <= 1.0, "p95 {}", delay.p95);
        assert!((delay.p99 - 99.0).abs() <= 1.0, "p99 {}", delay.p99);
        let jitter = r.jitter_tail().expect("two+ flits");
        assert_eq!(jitter.p50, jitter.p99, "constant jitter has a flat tail");
    }

    #[test]
    fn tail_overflow_saturates_at_top_edge() {
        let mut r = DelayJitterRecorder::new();
        r.record(0, Cycles(1_000_000));
        let delay = r.delay_tail().expect("non-empty");
        assert_eq!(delay.p99, 4096.0, "overflow reports the top edge, not garbage");
    }

    #[test]
    fn single_flit_flow_has_no_jitter_sample() {
        let mut r = DelayJitterRecorder::new();
        r.record(7, Cycles(4));
        assert_eq!(r.flow_jitter(7), None);
        assert_eq!(r.mean_jitter_cycles(), 0.0);
    }

    #[test]
    fn warmup_gates_measurement() {
        let w = Warmup::until(Cycles(100));
        assert!(!w.measuring(Cycles(99)));
        assert!(w.measuring(Cycles(100)));
        assert!(w.measuring(Cycles(101)));
    }

    #[test]
    fn sweep_table_renders_aligned_rows() {
        let mut t = SweepTable::new("delay (us)");
        for load in [0.2, 0.4] {
            t.push("biased", load, load * 0.1);
            t.push("fixed", load, load * 0.5);
        }
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header comment + column header + 2 rows
        assert!(lines[1].contains("biased") && lines[1].contains("fixed"));
        assert!(lines[2].trim_start().starts_with("0.200"));
        assert_eq!(t.series("biased").map(<[SweepPoint]>::len), Some(2));
        assert_eq!(t.series("missing"), None);
        assert_eq!(t.series_names().count(), 2);
    }

    #[test]
    fn sweep_table_handles_missing_points() {
        let mut t = SweepTable::new("m");
        t.push("a", 0.1, 1.0);
        t.push("b", 0.2, 2.0);
        let text = t.render();
        assert!(text.contains('-'), "missing cells render as dashes:\n{text}");
    }
}
