//! ASCII rendering of figure series.
//!
//! The benchmark harness prints its tables numerically ([`SweepTable`]);
//! this module adds a terminal plot so the figure *shapes* — who wins,
//! where curves cross, where saturation kicks in — are visible at a glance
//! without external tooling.

use crate::stats::SweepTable;

/// Glyphs used for the series, in order.
const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Renders a [`SweepTable`] as an ASCII scatter plot of `width`×`height`
/// character cells (plus axes and a legend).
///
/// Points from different series that fall in the same cell render as the
/// *later* series' glyph (the legend lists series in draw order).
///
/// # Example
///
/// ```
/// use mmr_sim::{plot::ascii_plot, SweepTable};
///
/// let mut t = SweepTable::new("demo");
/// t.push("a", 0.0, 0.0);
/// t.push("a", 1.0, 1.0);
/// let art = ascii_plot(&t, 20, 8);
/// assert!(art.contains('*'));
/// assert!(art.contains("a"));
/// ```
pub fn ascii_plot(table: &SweepTable, width: usize, height: usize) -> String {
    let width = width.max(8);
    let height = height.max(4);

    // Bounds over all series.
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    let names: Vec<&str> = table.series_names().collect();
    for name in &names {
        for p in table.series(name).unwrap_or(&[]) {
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
    }
    if !min_x.is_finite() {
        return format!("# {} (no data)\n", table.metric());
    }
    if (max_x - min_x).abs() < 1e-12 {
        max_x = min_x + 1.0;
    }
    if (max_y - min_y).abs() < 1e-12 {
        max_y = min_y + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, name) in names.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for p in table.series(name).unwrap_or(&[]) {
            let cx = ((p.x - min_x) / (max_x - min_x) * (width - 1) as f64).round() as usize;
            let cy = ((p.y - min_y) / (max_y - min_y) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("# {}\n", table.metric()));
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{max_y:>9.2}")
        } else if i == height - 1 {
            format!("{min_y:>9.2}")
        } else {
            " ".repeat(9)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(9));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("{:>10}{min_x:<.2}{:>pad$}{max_x:<.2}\n", "", "", pad = width.saturating_sub(8)));
    out.push_str("  legend: ");
    for (si, name) in names.iter().enumerate() {
        out.push_str(&format!("{}={name}  ", GLYPHS[si % GLYPHS.len()]));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SweepTable {
        let mut t = SweepTable::new("jitter vs load");
        for i in 0..10 {
            let x = i as f64 / 10.0;
            t.push("biased", x, x * x);
            t.push("fixed", x, x * 2.0);
        }
        t
    }

    #[test]
    fn plot_contains_axes_and_legend() {
        let art = ascii_plot(&table(), 40, 12);
        assert!(art.contains("# jitter vs load"));
        assert!(art.contains('|'), "y axis present");
        assert!(art.contains('+'), "origin present");
        assert!(art.contains("*=biased"));
        assert!(art.contains("o=fixed"));
    }

    #[test]
    fn plot_places_points_for_both_series() {
        let art = ascii_plot(&table(), 40, 12);
        assert!(art.chars().filter(|&c| c == '*').count() >= 5, "{art}");
        assert!(art.chars().filter(|&c| c == 'o').count() >= 5, "{art}");
    }

    #[test]
    fn empty_table_is_reported() {
        let t = SweepTable::new("empty");
        assert!(ascii_plot(&t, 40, 10).contains("no data"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut t = SweepTable::new("flat");
        t.push("s", 0.5, 1.0);
        let art = ascii_plot(&t, 20, 6);
        assert!(art.contains('*'));
    }

    #[test]
    fn minimum_dimensions_are_enforced() {
        let art = ascii_plot(&table(), 1, 1);
        assert!(art.lines().count() >= 6, "clamped to usable size");
    }
}
