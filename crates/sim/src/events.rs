//! A minimal discrete-event queue.
//!
//! The router proper is cycle-synchronous (§3.4 of the paper: flit cycles,
//! synchronous switch setting), but connection-level activity — stream
//! establishment, teardown, VBR frame boundaries — is naturally event
//! driven. [`EventQueue`] orders events by cycle with a stable FIFO
//! tie-break so simulations are deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::units::Cycles;

/// An entry in the queue: an event `E` scheduled at a cycle.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: Cycles,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events scheduled for the same cycle pop in insertion order.
///
/// # Example
///
/// ```
/// use mmr_sim::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycles(5), "later");
/// q.schedule(Cycles(1), "sooner");
/// assert_eq!(q.pop_before(Cycles(10)), Some((Cycles(1), "sooner")));
/// assert_eq!(q.pop_before(Cycles(3)), None); // "later" is not due yet
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` to fire at cycle `at`.
    pub fn schedule(&mut self, at: Cycles, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Cycle of the earliest pending event, if any.
    pub fn next_at(&self) -> Option<Cycles> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the earliest event if it is due at or before `now`.
    pub fn pop_before(&mut self, now: Cycles) -> Option<(Cycles, E)> {
        if self.heap.peek().is_some_and(|s| s.at <= now) {
            self.heap.pop().map(|s| (s.at, s.event))
        } else {
            None
        }
    }

    /// Pops the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(30), 'c');
        q.schedule(Cycles(10), 'a');
        q.schedule(Cycles(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(Cycles(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), ());
        assert!(q.pop_before(Cycles(9)).is_none());
        assert_eq!(q.pop_before(Cycles(10)), Some((Cycles(10), ())));
        assert!(q.pop_before(Cycles(100)).is_none());
    }

    #[test]
    fn len_and_next_at_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_at(), None);
        q.schedule(Cycles(7), 1);
        q.schedule(Cycles(3), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_at(), Some(Cycles(3)));
        q.pop();
        assert_eq!(q.next_at(), Some(Cycles(7)));
    }
}
