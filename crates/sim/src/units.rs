//! Strongly typed physical quantities used throughout the simulator.
//!
//! The MMR paper mixes three time bases — bits on a serial link, flit cycles
//! inside the router, and wall-clock microseconds in the figures. Newtypes
//! keep them apart (C-NEWTYPE) and centralise the conversions.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A link or connection bandwidth in bits per second.
///
/// Stored as `f64` bits/s: the paper's rate ladder spans 64 Kbps to
/// 1.24 Gbps, far inside `f64` exact-integer range.
///
/// # Example
///
/// ```
/// use mmr_sim::Bandwidth;
///
/// let link = Bandwidth::from_gbps(1.24);
/// let conn = Bandwidth::from_kbps(64.0);
/// assert!(conn < link);
/// assert_eq!(link.bits_per_sec(), 1.24e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Creates a bandwidth from raw bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is negative or not finite.
    pub fn from_bps(bps: f64) -> Self {
        // mmr-lint: allow(P-TRANS, reason="construction-time config validation; unreachable from the per-cycle path")
        assert!(bps.is_finite() && bps >= 0.0, "bandwidth must be finite and non-negative");
        Bandwidth(bps)
    }

    /// Creates a bandwidth from kilobits per second (decimal kilo).
    pub fn from_kbps(kbps: f64) -> Self {
        Self::from_bps(kbps * 1e3)
    }

    /// Creates a bandwidth from megabits per second (decimal mega).
    pub fn from_mbps(mbps: f64) -> Self {
        Self::from_bps(mbps * 1e6)
    }

    /// Creates a bandwidth from gigabits per second (decimal giga).
    pub fn from_gbps(gbps: f64) -> Self {
        Self::from_bps(gbps * 1e9)
    }

    /// Raw bits per second.
    pub fn bits_per_sec(self) -> f64 {
        self.0
    }

    /// This bandwidth expressed in megabits per second.
    pub fn mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// Fraction of `capacity` this bandwidth represents (load factor).
    ///
    /// Returns 0 when `capacity` is zero.
    pub fn fraction_of(self, capacity: Bandwidth) -> f64 {
        if capacity.0 == 0.0 {
            0.0
        } else {
            self.0 / capacity.0
        }
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for Bandwidth {
    fn sub_assign(&mut self, rhs: Bandwidth) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    fn div(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 / rhs)
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, Add::add)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3} Gbps", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.3} Mbps", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.1} Kbps", self.0 / 1e3)
        } else {
            write!(f, "{:.0} bps", self.0)
        }
    }
}

/// A count of router flit cycles.
///
/// Inside the router everything is synchronous to the flit cycle, so a plain
/// integer counter is the natural clock. Delay figures in the paper are
/// reported in these units ("router cycles").
///
/// # Example
///
/// ```
/// use mmr_sim::Cycles;
///
/// let a = Cycles(10);
/// let b = a + Cycles(5);
/// assert_eq!(b.0, 15);
/// assert_eq!(b - a, Cycles(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The zero cycle.
    pub const ZERO: Cycles = Cycles(0);

    /// Raw cycle count.
    pub fn count(self) -> u64 {
        self.0
    }

    /// Cycle count as `f64`, for statistics.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating difference, for "how long since" computations.
    pub fn since(self, earlier: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(earlier.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// Simulated wall-clock time in nanoseconds.
///
/// Used at the boundary between the cycle-synchronous router and the
/// figures, which report delay in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from nanoseconds.
    pub fn from_ns(ns: f64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub fn from_us(us: f64) -> Self {
        SimTime(us * 1e3)
    }

    /// This time in nanoseconds.
    pub fn ns(self) -> f64 {
        self.0
    }

    /// This time in microseconds.
    pub fn us(self) -> f64 {
        self.0 / 1e3
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} us", self.us())
    }
}

/// The timing relation between flits, links and router cycles.
///
/// A *flit cycle* is the time taken to transmit one flit through the router
/// and across the physical link (§4.1 of the paper). It is fully determined
/// by the flit size and the link rate; everything else in the simulation is
/// counted in these cycles and converted to wall-clock time only for
/// reporting.
///
/// # Example
///
/// ```
/// use mmr_sim::{Bandwidth, Cycles, FlitTiming};
///
/// let t = FlitTiming::new(128, Bandwidth::from_gbps(1.24));
/// assert!((t.cycle_time_ns() - 103.2).abs() < 0.1);
/// // Converting a 10-cycle delay to microseconds for Figure 4:
/// assert!((t.cycles_to_time(Cycles(10)).us() - 1.032).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlitTiming {
    flit_bits: u32,
    link_rate: Bandwidth,
}

impl FlitTiming {
    /// Creates a timing model for `flit_bits`-bit flits on a `link_rate` link.
    ///
    /// # Panics
    ///
    /// Panics if `flit_bits` is zero or the link rate is zero.
    pub fn new(flit_bits: u32, link_rate: Bandwidth) -> Self {
        // mmr-lint: allow(P-TRANS, reason="construction-time config validation; unreachable from the per-cycle path")
        assert!(flit_bits > 0, "flit size must be positive");
        assert!(link_rate.bits_per_sec() > 0.0, "link rate must be positive"); // mmr-lint: allow(P-TRANS, reason="construction-time config validation; unreachable from the per-cycle path")
        FlitTiming { flit_bits, link_rate }
    }

    /// The paper's headline configuration: 128-bit flits, 1.24 Gbps links.
    pub fn paper_default() -> Self {
        FlitTiming::new(128, Bandwidth::from_gbps(1.24))
    }

    /// Flit size in bits.
    pub fn flit_bits(self) -> u32 {
        self.flit_bits
    }

    /// Physical link rate.
    pub fn link_rate(self) -> Bandwidth {
        self.link_rate
    }

    /// Duration of one flit cycle in nanoseconds.
    pub fn cycle_time_ns(self) -> f64 {
        f64::from(self.flit_bits) / self.link_rate.bits_per_sec() * 1e9
    }

    /// Converts a cycle count to simulated time.
    pub fn cycles_to_time(self, cycles: Cycles) -> SimTime {
        SimTime::from_ns(cycles.as_f64() * self.cycle_time_ns())
    }

    /// Converts a (possibly fractional) cycle count to simulated time.
    pub fn cycles_f64_to_time(self, cycles: f64) -> SimTime {
        SimTime::from_ns(cycles * self.cycle_time_ns())
    }

    /// Flit inter-arrival period, in flit cycles, of a connection running at
    /// `rate`.
    ///
    /// A connection at the full link rate produces one flit per cycle
    /// (period 1.0); a 64 Kbps connection on a 1.24 Gbps link produces a flit
    /// every ~19 375 cycles.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    pub fn interarrival_cycles(self, rate: Bandwidth) -> f64 {
        // mmr-lint: allow(P-TRANS, reason="construction-time config validation; unreachable from the per-cycle path")
        assert!(rate.bits_per_sec() > 0.0, "connection rate must be positive");
        self.link_rate.bits_per_sec() / rate.bits_per_sec()
    }

    /// Number of flits a connection at `rate` generates over `cycles`
    /// flit cycles (the long-run average, rounded down).
    pub fn flits_in(self, rate: Bandwidth, cycles: Cycles) -> u64 {
        (cycles.as_f64() / self.interarrival_cycles(rate)).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_constructors_agree() {
        assert_eq!(Bandwidth::from_kbps(1.0), Bandwidth::from_bps(1000.0));
        assert_eq!(Bandwidth::from_mbps(1.0), Bandwidth::from_kbps(1000.0));
        assert_eq!(Bandwidth::from_gbps(1.0), Bandwidth::from_mbps(1000.0));
    }

    #[test]
    fn bandwidth_arithmetic() {
        let a = Bandwidth::from_mbps(10.0);
        let b = Bandwidth::from_mbps(4.0);
        assert_eq!((a + b).mbps(), 14.0);
        assert_eq!((a - b).mbps(), 6.0);
        // Subtraction saturates at zero rather than going negative.
        assert_eq!((b - a), Bandwidth::ZERO);
        assert_eq!((a * 2.0).mbps(), 20.0);
        assert_eq!((a / 2.0).mbps(), 5.0);
    }

    #[test]
    fn bandwidth_sum_and_fraction() {
        let total: Bandwidth = [1.0, 2.0, 3.0].iter().map(|m| Bandwidth::from_mbps(*m)).sum();
        assert_eq!(total.mbps(), 6.0);
        assert!((total.fraction_of(Bandwidth::from_mbps(12.0)) - 0.5).abs() < 1e-12);
        assert_eq!(total.fraction_of(Bandwidth::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn bandwidth_rejects_negative() {
        let _ = Bandwidth::from_bps(-1.0);
    }

    #[test]
    fn bandwidth_display_picks_unit() {
        assert_eq!(Bandwidth::from_gbps(1.24).to_string(), "1.240 Gbps");
        assert_eq!(Bandwidth::from_mbps(55.0).to_string(), "55.000 Mbps");
        assert_eq!(Bandwidth::from_kbps(64.0).to_string(), "64.0 Kbps");
        assert_eq!(Bandwidth::from_bps(10.0).to_string(), "10 bps");
    }

    #[test]
    fn cycles_arithmetic_saturates() {
        assert_eq!(Cycles(3) - Cycles(5), Cycles::ZERO);
        assert_eq!(Cycles(5).since(Cycles(3)), Cycles(2));
        assert_eq!(Cycles(3).since(Cycles(5)), Cycles::ZERO);
        let mut c = Cycles(1);
        c += Cycles(2);
        assert_eq!(c, Cycles(3));
    }

    #[test]
    fn simtime_round_trip() {
        let t = SimTime::from_us(1.5);
        assert!((t.ns() - 1500.0).abs() < 1e-9);
        assert!(((t + SimTime::from_ns(500.0)).us() - 2.0).abs() < 1e-9);
        assert!(((t - SimTime::from_ns(500.0)).us() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn paper_flit_cycle_is_103ns() {
        let t = FlitTiming::paper_default();
        assert!((t.cycle_time_ns() - 103.2258).abs() < 1e-3);
        assert_eq!(t.flit_bits(), 128);
    }

    #[test]
    fn flit_cycle_bounds_from_conclusion() {
        // The paper: "Targeting 1-2 Gbps links and 128-bit flit sizes, the
        // crossbar must be capable of computing switch settings at a rate of
        // 64 ns-128 ns."
        let one = FlitTiming::new(128, Bandwidth::from_gbps(1.0));
        let two = FlitTiming::new(128, Bandwidth::from_gbps(2.0));
        assert!((one.cycle_time_ns() - 128.0).abs() < 1e-9);
        assert!((two.cycle_time_ns() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn interarrival_for_slow_connection() {
        let t = FlitTiming::paper_default();
        let period = t.interarrival_cycles(Bandwidth::from_kbps(64.0));
        assert!((period - 19375.0).abs() < 1.0);
        // A full-rate connection sends one flit per cycle.
        assert!((t.interarrival_cycles(Bandwidth::from_gbps(1.24)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flits_in_window() {
        let t = FlitTiming::paper_default();
        // Half-link-rate connection over 100 cycles -> 50 flits.
        assert_eq!(t.flits_in(Bandwidth::from_gbps(0.62), Cycles(100)), 50);
    }

    #[test]
    fn cycles_to_time_matches_figure_axis() {
        let t = FlitTiming::paper_default();
        // 10 cycles is just over a microsecond at 103.2 ns/cycle.
        let d = t.cycles_to_time(Cycles(10));
        assert!((d.us() - 1.0322).abs() < 1e-3);
    }
}
