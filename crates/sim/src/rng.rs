//! Deterministic random-number plumbing.
//!
//! Every experiment in the reproduction is seeded so that figures are
//! bit-for-bit reproducible — across runs, platforms, and dependency
//! upgrades. To guarantee the last of those, [`SeededRng`] implements its own
//! fixed algorithm (xoshiro256++ seeded via splitmix64) rather than wrapping
//! an external crate whose stream might change between versions. It offers
//! the sampling primitives the workloads need, including the lognormal used
//! by the synthetic MPEG GoP model (via Box–Muller).

/// A deterministic random source with a fixed, documented algorithm
/// (xoshiro256++).
///
/// # Example
///
/// ```
/// use mmr_sim::SeededRng;
///
/// let mut a = SeededRng::new(42);
/// let mut b = SeededRng::new(42);
/// assert_eq!(a.index(10), b.index(10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededRng {
    state: [u64; 4],
    /// Cached second Box–Muller variate, stored as bits so `Eq` holds.
    spare_gaussian: Option<u64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        SeededRng {
            state: [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)],
            spare_gaussian: None,
        }
    }

    /// Next raw 64-bit value (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let [mut s0, mut s1, mut s2, mut s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Derives an independent child generator; used to give each traffic
    /// source its own stream so adding a source never perturbs the others.
    pub fn fork(&mut self, stream: u64) -> SeededRng {
        let base = self.next_u64();
        SeededRng::new(base.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(stream))
    }

    /// Uniform index in `0..n` (Lemire's multiply-shift with rejection).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        // mmr-lint: allow(P-TRANS, reason="empty-range sampling is a caller bug; the assert is the documented API contract")
        assert!(n > 0, "cannot sample from an empty range");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        // mmr-lint: allow(P-TRANS, reason="inverted-range sampling is a caller bug; the assert is the documented API contract")
        assert!(lo <= hi, "uniform range must be ordered");
        lo + (hi - lo) * self.unit()
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Exponential variate with the given mean (inter-arrival sampling).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = 1.0 - self.unit(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Standard normal variate via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(bits) = self.spare_gaussian.take() {
            return f64::from_bits(bits);
        }
        let u1 = 1.0 - self.unit();
        let u2 = self.unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_gaussian = Some((r * theta.sin()).to_bits());
        r * theta.cos()
    }

    /// Lognormal variate with the given *parameters* (mu, sigma of the
    /// underlying normal).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.gaussian()).exp()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        // mmr-lint: allow(P-TRANS, reason="index(len) rejects until it returns a value below len; in bounds by construction")
        &slice[self.index(slice.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = SeededRng::new(11);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut root1 = SeededRng::new(99);
        let mut root2 = SeededRng::new(99);
        let mut c1 = root1.fork(0);
        let mut c2 = root2.fork(0);
        assert_eq!(c1.index(1000), c2.index(1000));
        // A different stream id yields a different sequence.
        let mut c3 = SeededRng::new(99).fork(1);
        let diff = (0..32).filter(|_| c1.next_u64() != c3.next_u64()).count();
        assert!(diff > 28);
    }

    #[test]
    fn index_stays_in_range_and_covers() {
        let mut rng = SeededRng::new(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i = rng.index(7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..7 appear in 1000 draws");
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut rng = SeededRng::new(12);
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SeededRng::new(13);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SeededRng::new(4);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(5.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn gaussian_moments_are_close() {
        let mut rng = SeededRng::new(5);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = SeededRng::new(6);
        for _ in 0..1000 {
            assert!(rng.lognormal(0.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SeededRng::new(8);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements almost surely move");
    }

    #[test]
    fn pick_returns_member() {
        let mut rng = SeededRng::new(9);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.pick(&items)));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SeededRng::new(10);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
