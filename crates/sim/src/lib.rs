//! Simulation substrate for the MMR reproduction.
//!
//! The original MMR evaluation (Duato et al., HPCA 1999) used an ad-hoc C++
//! discrete-event simulator modelling a single router. This crate provides
//! the equivalent substrate as a reusable library:
//!
//! * [`units`] — strongly typed physical quantities ([`Bandwidth`],
//!   [`SimTime`], [`Cycles`], [`FlitTiming`]) so that link rates, flit sizes
//!   and cycle times can never be confused.
//! * [`rng`] — deterministic, seedable random source ([`SeededRng`]) so every
//!   figure in the evaluation is exactly reproducible.
//! * [`events`] — a discrete-event queue ([`EventQueue`]) for
//!   connection-level events (establishment, teardown, frame arrivals).
//! * [`stats`] — measurement machinery: streaming moments
//!   ([`Accumulator`]), [`Histogram`], the paper's delay/jitter metrics
//!   ([`DelayJitterRecorder`]), warm-up gating ([`Warmup`]) and figure-series
//!   assembly ([`SweepTable`]).
//!
//! # Example
//!
//! ```
//! use mmr_sim::{Bandwidth, FlitTiming};
//!
//! // The paper's headline configuration: 128-bit flits on 1.24 Gbps links.
//! let timing = FlitTiming::new(128, Bandwidth::from_gbps(1.24));
//! // A flit cycle is ~103 ns.
//! assert!((timing.cycle_time_ns() - 103.2).abs() < 0.1);
//! ```

pub mod events;
pub mod plot;
pub mod rng;
pub mod stats;
pub mod units;

pub use events::EventQueue;
pub use rng::SeededRng;
pub use stats::{Accumulator, DelayJitterRecorder, Histogram, SweepTable, TailSummary, Warmup};
pub use units::{Bandwidth, Cycles, FlitTiming, SimTime};
