//! Regression test for iteration-order determinism in the stats path.
//!
//! The recorder's per-flow state is keyed by dense flow id and every
//! cross-flow reduction walks flows in ascending-id order, so the order in
//! which flows *first appear* in the event stream must not leak into any
//! reported aggregate. This pins that property: two runs over the same
//! per-flow delay sequences, interleaved differently (flow 9 discovered
//! first vs. flow 0 discovered first), must agree bit-for-bit on every
//! flow-derived metric. A switch to a hash-keyed container (or any
//! insertion-order-sensitive reduction) breaks this test.

use mmr_sim::stats::DelayJitterRecorder;
use mmr_sim::units::Cycles;

/// Per-flow delay sequences: flow id -> successive flit delays in cycles.
fn flow_traces() -> Vec<(u32, Vec<u64>)> {
    vec![
        (0, vec![3, 5, 4, 9]),
        (2, vec![7, 7, 7]),
        (5, vec![1, 12, 2, 2, 30]),
        (9, vec![4, 4, 8, 6]),
    ]
}

/// Feeds every trace into a recorder, visiting flows in `order` round-robin
/// style so first-appearance order differs between runs while each flow
/// still sees its own delays in sequence.
fn record_interleaved(order: &[usize]) -> DelayJitterRecorder {
    let traces = flow_traces();
    let mut cursors = vec![0usize; traces.len()];
    let mut r = DelayJitterRecorder::new();
    loop {
        let mut progressed = false;
        for &t in order {
            let (flow, delays) = &traces[t];
            if cursors[t] < delays.len() {
                r.record(*flow, Cycles(delays[cursors[t]]));
                cursors[t] += 1;
                progressed = true;
            }
        }
        if !progressed {
            return r;
        }
    }
}

#[test]
fn flow_metrics_ignore_flow_arrival_order() {
    let forward = record_interleaved(&[0, 1, 2, 3]);
    let reversed = record_interleaved(&[3, 2, 1, 0]);

    assert_eq!(forward.flows(), reversed.flows());
    assert_eq!(forward.flits(), reversed.flits());
    // Flow-weighted reductions walk flows in ascending id order, so they
    // must be bitwise identical, not merely approximately equal.
    assert_eq!(
        forward.mean_jitter_cycles().to_bits(),
        reversed.mean_jitter_cycles().to_bits(),
        "connection-weighted jitter depends on flow arrival order"
    );
    assert_eq!(
        forward.mean_jitter_cycles_flit_weighted().to_bits(),
        reversed.mean_jitter_cycles_flit_weighted().to_bits(),
        "flit-weighted jitter depends on flow arrival order"
    );
    assert_eq!(
        forward.mean_drift_cycles().to_bits(),
        reversed.mean_drift_cycles().to_bits(),
        "drift depends on flow arrival order"
    );
    for (flow, _) in flow_traces() {
        assert_eq!(
            forward.flow_jitter(flow).map(f64::to_bits),
            reversed.flow_jitter(flow).map(f64::to_bits),
            "per-flow jitter for flow {flow} depends on arrival order"
        );
    }
    // Order-insensitive pooled facts must also agree exactly.
    assert_eq!(forward.max_delay_cycles().to_bits(), reversed.max_delay_cycles().to_bits());
}

#[test]
fn identical_streams_are_bit_identical() {
    // Same interleaving twice: the whole recorder output, pooled Welford
    // mean included, must reproduce exactly.
    let a = record_interleaved(&[2, 0, 3, 1]);
    let b = record_interleaved(&[2, 0, 3, 1]);
    assert_eq!(a.mean_delay_cycles().to_bits(), b.mean_delay_cycles().to_bits());
    assert_eq!(a.mean_jitter_cycles().to_bits(), b.mean_jitter_cycles().to_bits());
    assert_eq!(a.delay_tail().is_some(), b.delay_tail().is_some());
}
