//! Call-level workload: connection arrivals and departures.
//!
//! The paper's admission control (§4.2) is evaluated here at the *call*
//! level, the classic telephony view: connection requests arrive as a
//! Poisson process, hold for an exponentially distributed time, and are
//! admitted or blocked by the router's bandwidth books and VC pools. The
//! output is the blocking probability and the carried load — the
//! admission-control analogue of an Erlang loss system, with the router's
//! per-link registers as the servers.

use mmr_core::conn::{ConnectionRequest, QosClass};
use mmr_core::ids::{ConnectionId, PortId};
use mmr_core::router::{EstablishError, Router};
use mmr_sim::{Bandwidth, Cycles, EventQueue, SeededRng};

/// Configuration of a call-level run.
#[derive(Debug, Clone)]
pub struct CallWorkload {
    /// Mean call arrivals per flit cycle.
    pub arrival_rate: f64,
    /// Mean holding time in flit cycles.
    pub mean_holding: f64,
    /// Rates requested by calls (uniformly drawn).
    pub ladder: Vec<Bandwidth>,
    /// Workload seed.
    pub seed: u64,
}

impl CallWorkload {
    /// The offered traffic intensity in erlangs (arrival rate × holding
    /// time): the mean number of calls that *want* to be up concurrently.
    pub fn offered_erlangs(&self) -> f64 {
        self.arrival_rate * self.mean_holding
    }
}

/// The result of a call-level simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallStats {
    /// Call requests generated.
    pub offered: u64,
    /// Calls admitted.
    pub admitted: u64,
    /// Calls blocked, by cause: bandwidth admission control.
    pub blocked_bandwidth: u64,
    /// Calls blocked, by cause: virtual-channel exhaustion.
    pub blocked_vcs: u64,
    /// Time-averaged number of concurrent calls (carried erlangs).
    pub carried_erlangs: f64,
}

impl CallStats {
    /// Fraction of offered calls that were blocked.
    pub fn blocking_probability(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.blocked_bandwidth + self.blocked_vcs) as f64 / self.offered as f64
        }
    }
}

#[derive(Debug)]
enum CallEvent {
    Arrival,
    Departure(ConnectionId),
}

/// Runs a call-level simulation for `total_cycles` on `router`.
///
/// Only connection establishment and teardown are exercised — no data flits
/// flow — so runs are fast enough to sweep arrival rates densely.
pub fn run_calls(router: &mut Router, workload: &CallWorkload, total_cycles: u64) -> CallStats {
    assert!(workload.arrival_rate > 0.0, "arrival rate must be positive");
    assert!(workload.mean_holding > 0.0, "holding time must be positive");
    assert!(!workload.ladder.is_empty(), "rate ladder must be non-empty");

    let ports = router.config().ports();
    let mut rng = SeededRng::new(workload.seed);
    let mut queue: EventQueue<CallEvent> = EventQueue::new();
    let first = rng.exponential(1.0 / workload.arrival_rate) as u64;
    queue.schedule(Cycles(first), CallEvent::Arrival);

    let mut stats = CallStats {
        offered: 0,
        admitted: 0,
        blocked_bandwidth: 0,
        blocked_vcs: 0,
        carried_erlangs: 0.0,
    };
    let mut concurrent: u64 = 0;
    let mut concurrent_integral: f64 = 0.0;
    let mut last_time: u64 = 0;

    while let Some((at, event)) = queue.pop() {
        if at.count() >= total_cycles {
            break;
        }
        concurrent_integral += concurrent as f64 * (at.count() - last_time) as f64;
        last_time = at.count();
        match event {
            CallEvent::Arrival => {
                stats.offered += 1;
                let rate = *rng.pick(&workload.ladder);
                let input = PortId(rng.index(ports) as u8);
                let output = PortId(rng.index(ports) as u8);
                match router.establish(ConnectionRequest {
                    input,
                    output,
                    class: QosClass::Cbr { rate },
                }) {
                    Ok(conn) => {
                        stats.admitted += 1;
                        concurrent += 1;
                        let holding = rng.exponential(workload.mean_holding).max(1.0) as u64;
                        queue.schedule(at + Cycles(holding), CallEvent::Departure(conn));
                    }
                    Err(EstablishError::Admission(_)) => stats.blocked_bandwidth += 1,
                    Err(EstablishError::NoFreeInputVc | EstablishError::NoFreeOutputVc) => {
                        stats.blocked_vcs += 1;
                    }
                    Err(
                        e @ (EstablishError::InvalidPort { .. }
                        | EstablishError::Quarantined),
                    ) => unreachable!("standalone router, never quarantined: {e}"),
                }
                let gap = rng.exponential(1.0 / workload.arrival_rate).max(1.0) as u64;
                queue.schedule(at + Cycles(gap), CallEvent::Arrival);
            }
            CallEvent::Departure(conn) => {
                router.teardown(conn).expect("departing calls are live");
                concurrent -= 1;
            }
        }
    }
    concurrent_integral += concurrent as f64 * (total_cycles - last_time) as f64;
    stats.carried_erlangs = concurrent_integral / total_cycles as f64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::paper_rate_ladder;
    use mmr_core::router::RouterConfig;

    fn workload(arrival_rate: f64, mean_holding: f64, seed: u64) -> CallWorkload {
        CallWorkload {
            arrival_rate,
            mean_holding,
            ladder: paper_rate_ladder().to_vec(),
            seed,
        }
    }

    #[test]
    fn light_load_admits_everything() {
        let mut router = RouterConfig::paper_default().seed(1).build();
        let w = workload(0.001, 2_000.0, 1); // ~2 erlangs on 8 ports
        let stats = run_calls(&mut router, &w, 400_000);
        assert!(stats.offered > 200, "enough arrivals: {}", stats.offered);
        assert_eq!(stats.blocking_probability(), 0.0, "{stats:?}");
        assert!((stats.carried_erlangs - w.offered_erlangs()).abs() < 1.0, "{stats:?}");
    }

    #[test]
    fn heavy_load_blocks_calls() {
        // Tiny router: one output pair, small VC pool.
        let mut router =
            RouterConfig::paper_default().ports(2).vcs_per_port(8).candidates(2).seed(2).build();
        let w = workload(0.05, 10_000.0, 2); // 500 erlangs of demand on 2 ports
        let stats = run_calls(&mut router, &w, 200_000);
        assert!(stats.blocking_probability() > 0.5, "{stats:?}");
        assert!(stats.admitted > 0, "some calls still fit: {stats:?}");
    }

    #[test]
    fn blocking_probability_is_monotone_in_load() {
        let mut last = -1.0;
        for (i, rate) in [0.002, 0.01, 0.05].into_iter().enumerate() {
            let mut router =
                RouterConfig::paper_default().vcs_per_port(32).seed(3 + i as u64).build();
            let stats = run_calls(&mut router, &workload(rate, 20_000.0, 3), 300_000);
            let p = stats.blocking_probability();
            assert!(p >= last - 0.02, "blocking roughly monotone: {p} after {last}");
            last = p;
        }
        assert!(last > 0.0, "the heaviest point must block");
    }

    #[test]
    fn departures_release_capacity() {
        // With short holding times, a stream of full-link calls keeps
        // succeeding because each departs before the next arrives.
        let mut router = RouterConfig::paper_default().ports(2).vcs_per_port(4).seed(4).build();
        let w = CallWorkload {
            arrival_rate: 0.001,
            mean_holding: 100.0,
            ladder: vec![Bandwidth::from_gbps(1.24)],
            seed: 4,
        };
        let stats = run_calls(&mut router, &w, 400_000);
        assert!(stats.offered > 200);
        assert!(
            stats.blocking_probability() < 0.2,
            "short full-link calls rarely collide: {stats:?}"
        );
    }

    #[test]
    fn stats_accounting_is_consistent() {
        let mut router = RouterConfig::paper_default().vcs_per_port(16).seed(5).build();
        let stats = run_calls(&mut router, &workload(0.02, 5_000.0, 5), 100_000);
        assert_eq!(
            stats.offered,
            stats.admitted + stats.blocked_bandwidth + stats.blocked_vcs,
            "{stats:?}"
        );
        assert!(stats.carried_erlangs > 0.0);
    }
}
