//! Constant-bit-rate sources and workload construction.
//!
//! A [`CbrSource`] paces one connection: it produces a flit every
//! inter-arrival period (a real number of flit cycles, so slow connections
//! are modelled exactly), with a random initial phase so connections do not
//! arrive in lockstep. [`CbrWorkload`] builds the paper's experiment
//! population: connections with rates drawn uniformly from a ladder,
//! assigned to random input/output ports under admission control, until a
//! target offered load is reached.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mmr_core::conn::{ConnectionRequest, QosClass};
use mmr_core::ids::{ConnectionId, PortId};
use mmr_core::router::{EstablishError, Router, Transmitted};
use mmr_sim::{Bandwidth, Cycles, SeededRng};

/// Paces flit arrivals for one established connection.
#[derive(Debug, Clone)]
pub struct CbrSource {
    conn: ConnectionId,
    interarrival: f64,
    next_arrival: f64,
    /// Flits that were due but could not be injected (buffer full); they are
    /// retried before new arrivals — the paper's source-interface
    /// backpressure.
    backlog: u32,
}

impl CbrSource {
    /// Creates a source for `conn` with the given inter-arrival period in
    /// flit cycles, starting at a random phase.
    ///
    /// # Panics
    ///
    /// Panics if `interarrival_cycles` is not positive and finite.
    pub fn new(conn: ConnectionId, interarrival_cycles: f64, rng: &mut SeededRng) -> Self {
        assert!(
            interarrival_cycles.is_finite() && interarrival_cycles > 0.0,
            "CBR inter-arrival must be positive"
        );
        CbrSource {
            conn,
            interarrival: interarrival_cycles,
            next_arrival: rng.uniform(0.0, interarrival_cycles),
            backlog: 0,
        }
    }

    /// The connection this source feeds.
    pub fn conn(&self) -> ConnectionId {
        self.conn
    }

    /// Number of flits due at or before `now` (advances the arrival clock).
    pub fn due(&mut self, now: Cycles) -> u32 {
        let mut due = self.backlog;
        self.backlog = 0;
        while self.next_arrival <= now.as_f64() {
            due += 1;
            self.next_arrival += self.interarrival;
        }
        due
    }

    /// Records that `n` due flits could not be injected and must be retried.
    pub fn defer(&mut self, n: u32) {
        self.backlog += n;
    }

    /// The earliest cycle at which this source next has a flit due: a flit
    /// arrives at integer cycle `t` iff `next_arrival <= t`, i.e. at
    /// `ceil(next_arrival)`. Only meaningful while the backlog is empty
    /// (a backlogged source is due every cycle).
    fn next_due(&self) -> u64 {
        self.next_arrival.max(0.0).ceil() as u64
    }

    /// Injects all due flits into `router`, deferring on backpressure.
    /// Returns the number injected.
    pub fn pump(&mut self, router: &mut Router, now: Cycles) -> u32 {
        let due = self.due(now);
        let mut injected = 0;
        for _ in 0..due {
            if router.inject(self.conn, now).is_ok() {
                injected += 1;
            } else {
                self.defer(due - injected);
                break;
            }
        }
        injected
    }
}

/// One admitted connection of a CBR workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CbrConnection {
    /// The router's connection id.
    pub id: ConnectionId,
    /// The connection's data rate.
    pub rate: Bandwidth,
    /// Input port.
    pub input: PortId,
    /// Output port.
    pub output: PortId,
}

/// Calendar-wheel horizon in cycles (a power of two). Wake cycles within
/// `horizon` of the wheel cursor live in O(1) buckets; farther ones (the
/// slowest rate rungs — a 64 Kbps source fires every ~19 375 cycles) wait in
/// a small overflow heap and are lifted into a bucket as the cursor nears.
const WHEEL_SLOTS: usize = 4096;
const WHEEL_MASK: u64 = WHEEL_SLOTS as u64 - 1;

/// A CBR connection population admitted to a router, plus its sources.
///
/// Pacing is event-driven: a calendar wheel of wake cycles tracks when each
/// idle source next has a flit due, so [`CbrWorkload::pump`] touches only
/// the sources with work this cycle instead of scanning the whole
/// population — and pays O(1) per wake, not a heap's O(log n) sift.
/// A backpressured source (non-empty backlog) is parked instead of being
/// retried every cycle: its input VC is full, and since the only way that
/// VC drains is a transmission of its connection, a retry before then is a
/// provable no-op. [`CbrWorkload::note_transmitted`] wakes parked sources —
/// callers that interleave `pump` with [`Router::step`] must feed every
/// step's transmissions back, or backpressured sources stall.
#[derive(Debug, Clone)]
pub struct CbrWorkload {
    connections: Vec<CbrConnection>,
    sources: Vec<CbrSource>,
    offered: Bandwidth,
    attempts_failed: u32,
    /// Calendar buckets: source indices due at cycle `c` live in bucket
    /// `c & WHEEL_MASK`. Every source that is neither backlogged nor
    /// awaiting retry has exactly one entry (here or in `overflow`). The
    /// invariant `cursor <= due < cursor + WHEEL_SLOTS` for every bucketed
    /// wake makes the slot → cycle mapping unambiguous.
    buckets: Vec<Vec<u32>>,
    /// Occupancy bitmap over `buckets` (one bit per slot), so finding the
    /// next non-empty bucket is a word-parallel scan, not a slot walk.
    occupied: [u64; WHEEL_SLOTS / 64],
    /// All bucketed wakes are due at or after this cycle (= the last pumped
    /// cycle), and before `cursor + WHEEL_SLOTS`.
    cursor: u64,
    /// Number of wakes currently bucketed.
    in_wheel: usize,
    /// Wakes beyond the wheel horizon, `(due cycle, source index)`.
    overflow: BinaryHeap<Reverse<(u64, usize)>>,
    /// Per-source parked flag: backlogged and waiting for its connection to
    /// transmit before retrying.
    parked: Vec<bool>,
    /// Sources woken by [`CbrWorkload::note_transmitted`], retried at the
    /// next pump.
    retry: Vec<usize>,
    /// Source index by connection id (`usize::MAX` = no source).
    source_of_conn: Vec<usize>,
    /// Reusable per-cycle list of source indices with work.
    due_scratch: Vec<usize>,
}

impl CbrWorkload {
    /// Builds a workload on `router` targeting `target_load` (fraction of
    /// total switch bandwidth, the paper's offered-load axis).
    ///
    /// Rates are drawn uniformly from `ladder`; ports are drawn uniformly at
    /// random, retrying a bounded number of times when a random pick fails
    /// admission. Building stops when the target is reached or no further
    /// connection can be admitted.
    pub fn build(
        router: &mut Router,
        ladder: &[Bandwidth],
        target_load: f64,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(!ladder.is_empty(), "rate ladder must be non-empty");
        assert!((0.0..=1.0).contains(&target_load), "load is a fraction of switch bandwidth");
        let dims = router.config();
        let ports = dims.ports();
        let capacity = dims.timing().link_rate() * ports as f64;
        let mut offered = Bandwidth::ZERO;
        let mut connections = Vec::new();
        let mut sources = Vec::new();
        let mut attempts_failed = 0u32;
        // Each failed attempt leaves the router unchanged, so a bounded
        // number of retries cannot leak resources.
        let max_failures = 200 + ports as u32 * 64;

        while offered.fraction_of(capacity) < target_load && attempts_failed < max_failures {
            let rate = *rng.pick(ladder);
            // Never overshoot the target by more than one rung: skip rates
            // that would exceed it when smaller rungs exist.
            if (offered + rate).fraction_of(capacity) > target_load + ladder[0].fraction_of(capacity)
                && rate > ladder[0]
            {
                attempts_failed += 1;
                continue;
            }
            let input = PortId(rng.index(ports) as u8);
            let output = PortId(rng.index(ports) as u8);
            match router.establish(ConnectionRequest {
                input,
                output,
                class: QosClass::Cbr { rate },
            }) {
                Ok(id) => {
                    offered += rate;
                    let interarrival = dims.timing().interarrival_cycles(rate);
                    sources.push(CbrSource::new(id, interarrival, rng));
                    connections.push(CbrConnection { id, rate, input, output });
                }
                Err(
                    EstablishError::Admission(_)
                    | EstablishError::NoFreeInputVc
                    | EstablishError::NoFreeOutputVc,
                ) => {
                    attempts_failed += 1;
                }
                Err(
                    e @ (EstablishError::InvalidPort { .. } | EstablishError::Quarantined),
                ) => {
                    unreachable!("ports drawn in range on a standalone router: {e}")
                }
            }
        }

        let max_raw = connections.iter().map(|c| c.id.raw() as usize).max().map_or(0, |m| m + 1);
        let mut source_of_conn = vec![usize::MAX; max_raw];
        for (i, c) in connections.iter().enumerate() {
            source_of_conn[c.id.raw() as usize] = i;
        }
        let mut workload = CbrWorkload {
            parked: vec![false; sources.len()],
            retry: Vec::new(),
            source_of_conn,
            connections,
            sources,
            offered,
            attempts_failed,
            buckets: vec![Vec::new(); WHEEL_SLOTS],
            occupied: [0; WHEEL_SLOTS / 64],
            cursor: 0,
            in_wheel: 0,
            overflow: BinaryHeap::new(),
            due_scratch: Vec::new(),
        };
        for i in 0..workload.sources.len() {
            let due = workload.sources[i].next_due();
            workload.schedule_wake(due, i);
        }
        workload
    }

    /// Files a wake for source `idx` at cycle `due` (which must be at or
    /// after the wheel cursor): an O(1) bucket push within the horizon, the
    /// overflow heap beyond it.
    // mmr-lint: hot
    fn schedule_wake(&mut self, due: u64, idx: usize) {
        debug_assert!(due >= self.cursor, "wake scheduled in the past");
        if due - self.cursor < WHEEL_SLOTS as u64 {
            let slot = (due & WHEEL_MASK) as usize;
            // mmr-lint: allow(A-PUSH, reason="amortized: bucket capacity is retained across laps of the wheel (PR 1 zero-alloc design)")
            self.buckets[slot].push(idx as u32);
            self.occupied[slot >> 6] |= 1 << (slot & 63);
            self.in_wheel += 1;
        } else {
            // mmr-lint: allow(A-PUSH, reason="amortized: heap capacity is retained; only the slowest rate rungs ever overflow the horizon")
            self.overflow.push(Reverse((due, idx)));
        }
    }

    /// Drains every bucketed wake due at or before `t` into `due_scratch`
    /// and advances the cursor to `t`.
    // mmr-lint: hot
    fn drain_wheel(&mut self, t: u64) {
        let span = (t - self.cursor + 1).min(WHEEL_SLOTS as u64);
        let mut offset = 0;
        while offset < span && self.in_wheel > 0 {
            // Word-parallel skip over empty slots from the cursor position.
            let slot = ((self.cursor + offset) & WHEEL_MASK) as usize;
            let word = self.occupied[slot >> 6] >> (slot & 63);
            if word == 0 {
                // The rest of this word is empty; jump to the next word
                // boundary.
                offset += 64 - (slot as u64 & 63);
                continue;
            }
            let hop = word.trailing_zeros() as u64;
            offset += hop;
            if offset >= span {
                break;
            }
            let slot = ((self.cursor + offset) & WHEEL_MASK) as usize;
            let bucket = &mut self.buckets[slot];
            self.in_wheel -= bucket.len();
            for &idx in bucket.iter() {
                // mmr-lint: allow(A-PUSH, reason="amortized: reusable buffer retains its capacity across cycles (PR 1 zero-alloc design)")
                self.due_scratch.push(idx as usize);
            }
            bucket.clear();
            self.occupied[slot >> 6] &= !(1 << (slot & 63));
            offset += 1;
        }
        self.cursor = t;
    }

    /// The admitted connections.
    pub fn connections(&self) -> &[CbrConnection] {
        &self.connections
    }

    /// Total offered bandwidth of admitted connections.
    pub fn offered_bandwidth(&self) -> Bandwidth {
        self.offered
    }

    /// Achieved offered load as a fraction of `ports × link_rate`.
    pub fn offered_load(&self, router: &Router) -> f64 {
        let dims = router.config();
        self.offered.fraction_of(dims.timing().link_rate() * dims.ports() as f64)
    }

    /// Establishment attempts that failed (admission or VC exhaustion).
    pub fn attempts_failed(&self) -> u32 {
        self.attempts_failed
    }

    /// Injects all due flits of every source for cycle `now`.
    /// Returns the number of flits injected.
    ///
    /// Equivalent to pumping every source each cycle: an idle source with
    /// `next_arrival > now` contributes nothing, a parked source's retry is
    /// guaranteed to fail until its connection transmits (injection is
    /// side-effect-free on failure), and skipping either visit cannot change
    /// any other source's outcome because sources feed disjoint virtual
    /// channels.
    // mmr-lint: hot
    pub fn pump(&mut self, router: &mut Router, now: Cycles) -> u32 {
        let t = now.count();
        self.due_scratch.clear();
        // Buckets first (against the old cursor), then the overflow heap:
        // an event skip can jump the cursor past an overflow wake, and a
        // lift into a bucket must target the *new* cursor's lap of the
        // wheel to keep the slot → cycle mapping unambiguous.
        self.drain_wheel(t);
        while let Some(&Reverse((due, idx))) = self.overflow.peek() {
            if due <= t {
                self.overflow.pop();
                // mmr-lint: allow(A-PUSH, reason="amortized: reusable buffer retains its capacity across cycles (PR 1 zero-alloc design)")
                self.due_scratch.push(idx);
            } else if due - t < WHEEL_SLOTS as u64 {
                self.overflow.pop();
                self.schedule_wake(due, idx);
            } else {
                break;
            }
        }
        // Woken sources retry alongside newly due ones; visit in ascending
        // source index, the dense scan's order.
        self.due_scratch.extend_from_slice(&self.retry);
        self.retry.clear();
        self.due_scratch.sort_unstable();
        let mut injected = 0;
        for i in 0..self.due_scratch.len() {
            let idx = self.due_scratch[i];
            let src = &mut self.sources[idx];
            injected += src.pump(router, now);
            if src.backlog > 0 {
                self.parked[idx] = true;
            } else {
                let due = src.next_due();
                self.schedule_wake(due, idx);
            }
        }
        injected
    }

    /// Wakes parked sources whose connection just transmitted (the pop made
    /// room in their input VC, so the retry at the next cycle's pump can
    /// succeed — exactly the first cycle at which a dense per-cycle retry
    /// would have succeeded). Call after every [`Router::step`] whose report
    /// may contain this workload's connections.
    // mmr-lint: hot
    pub fn note_transmitted(&mut self, transmitted: &[Transmitted]) {
        for tx in transmitted {
            if let Some(&idx) = self.source_of_conn.get(tx.conn.raw() as usize) {
                if idx != usize::MAX && self.parked[idx] {
                    self.parked[idx] = false;
                    // mmr-lint: allow(A-PUSH, reason="amortized: reusable buffer retains its capacity across cycles (PR 1 zero-alloc design)")
                    self.retry.push(idx);
                }
            }
        }
    }

    /// The earliest cycle at which any source next has self-driven work, or
    /// `None` when no source ever will. Sources awaiting retry are due
    /// immediately; parked sources are excluded (they wake only via
    /// [`CbrWorkload::note_transmitted`], and the flits they wait behind
    /// keep the router non-quiescent anyway).
    pub fn next_due_cycle(&self) -> Option<u64> {
        if !self.retry.is_empty() {
            return Some(0);
        }
        let wheel_next = self.next_bucketed_wake();
        let overflow_next = self.overflow.peek().map(|&Reverse((due, _))| due);
        match (wheel_next, overflow_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The earliest bucketed wake cycle: a word-parallel scan of the
    /// occupancy bitmap starting at the cursor slot (wakes live within one
    /// horizon of the cursor, so the first set bit reached is the earliest).
    fn next_bucketed_wake(&self) -> Option<u64> {
        if self.in_wheel == 0 {
            return None;
        }
        let mut offset = 0u64;
        while offset < WHEEL_SLOTS as u64 {
            let slot = ((self.cursor + offset) & WHEEL_MASK) as usize;
            let word = self.occupied[slot >> 6] >> (slot & 63);
            if word == 0 {
                offset += 64 - (slot as u64 & 63);
                continue;
            }
            return Some(self.cursor + offset + u64::from(word.trailing_zeros()));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::paper_rate_ladder;
    use mmr_core::router::RouterConfig;

    fn rng() -> SeededRng {
        SeededRng::new(99)
    }

    #[test]
    fn source_paces_at_interarrival() {
        let mut r = rng();
        let mut src = CbrSource::new(ConnectionId(0), 10.0, &mut r);
        let mut total = 0;
        for t in 0..100 {
            total += src.due(Cycles(t));
        }
        assert_eq!(total, 10, "one flit per 10 cycles over 100 cycles");
    }

    #[test]
    fn source_phase_is_randomised() {
        let mut r = rng();
        let firsts: Vec<u32> = (0..8)
            .map(|_| {
                let mut s = CbrSource::new(ConnectionId(0), 100.0, &mut r);
                (0..100u64).find(|&t| s.due(Cycles(t)) > 0).expect("arrives within a period")
                    as u32
            })
            .collect();
        let distinct: std::collections::BTreeSet<_> = firsts.iter().collect();
        assert!(distinct.len() > 4, "phases differ: {firsts:?}");
    }

    #[test]
    fn deferred_flits_are_retried() {
        let mut r = rng();
        let mut src = CbrSource::new(ConnectionId(0), 5.0, &mut r);
        let due = src.due(Cycles(20));
        assert!(due >= 3);
        src.defer(due);
        assert_eq!(src.due(Cycles(20)), due, "backlog carried forward");
    }

    #[test]
    fn fractional_interarrival_is_exact() {
        let mut r = rng();
        // 2.5-cycle period -> exactly 40 flits in 100 cycles.
        let mut src = CbrSource::new(ConnectionId(0), 2.5, &mut r);
        let total: u32 = (0..100).map(|t| src.due(Cycles(t))).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn workload_reaches_target_load() {
        let mut router = RouterConfig::paper_default().seed(5).build();
        let mut r = rng();
        let w = CbrWorkload::build(&mut router, &paper_rate_ladder(), 0.5, &mut r);
        let load = w.offered_load(&router);
        assert!((load - 0.5).abs() < 0.05, "achieved {load}");
        assert_eq!(w.connections().len(), router.connections());
        assert!(w.connections().len() > 50, "many small connections expected");
    }

    #[test]
    fn workload_high_load_is_achievable() {
        let mut router = RouterConfig::paper_default().seed(6).build();
        let mut r = rng();
        let w = CbrWorkload::build(&mut router, &paper_rate_ladder(), 0.95, &mut r);
        let load = w.offered_load(&router);
        assert!(load > 0.90, "achieved {load} of 0.95 target");
    }

    #[test]
    fn workload_pump_injects_flits() {
        let mut router = RouterConfig::paper_default().seed(7).build();
        let mut r = rng();
        let mut w = CbrWorkload::build(&mut router, &paper_rate_ladder(), 0.3, &mut r);
        let injected: u32 = (0..2000).map(|t| w.pump(&mut router, Cycles(t))).sum();
        assert!(injected > 100, "flits flow: {injected}");
    }

    #[test]
    fn event_pump_matches_dense_scan() {
        // The wake-wheel pump must be indistinguishable from pumping every
        // source every cycle, including under backpressure at high load.
        let build = || {
            let mut router =
                RouterConfig::paper_default().vcs_per_port(64).candidates(2).seed(11).build();
            let mut r = SeededRng::new(42);
            let w = CbrWorkload::build(&mut router, &paper_rate_ladder(), 0.9, &mut r);
            (router, w)
        };
        let (mut ra, mut wa) = build();
        let (mut rb, mut wb) = build();
        for t in 0..4_000 {
            let now = Cycles(t);
            let ea = wa.pump(&mut ra, now);
            let eb: u32 = wb.sources.iter_mut().map(|s| s.pump(&mut rb, now)).sum();
            assert_eq!(ea, eb, "injections diverge at cycle {t}");
            let sa = ra.step(now);
            let sb = rb.step(now);
            assert_eq!(sa.transmitted, sb.transmitted, "transmissions diverge at cycle {t}");
            wa.note_transmitted(&sa.transmitted);
        }
        assert_eq!(ra.stats(), rb.stats());
    }

    #[test]
    fn zero_load_builds_empty_workload() {
        let mut router = RouterConfig::paper_default().seed(8).build();
        let mut r = rng();
        let w = CbrWorkload::build(&mut router, &paper_rate_ladder(), 0.0, &mut r);
        assert!(w.connections().is_empty());
        assert_eq!(w.offered_bandwidth(), Bandwidth::ZERO);
    }
}
