//! Constant-bit-rate sources and workload construction.
//!
//! A [`CbrSource`] paces one connection: it produces a flit every
//! inter-arrival period (a real number of flit cycles, so slow connections
//! are modelled exactly), with a random initial phase so connections do not
//! arrive in lockstep. [`CbrWorkload`] builds the paper's experiment
//! population: connections with rates drawn uniformly from a ladder,
//! assigned to random input/output ports under admission control, until a
//! target offered load is reached.

use mmr_core::conn::{ConnectionRequest, QosClass};
use mmr_core::ids::{ConnectionId, PortId};
use mmr_core::router::{EstablishError, Router};
use mmr_sim::{Bandwidth, Cycles, SeededRng};

/// Paces flit arrivals for one established connection.
#[derive(Debug, Clone)]
pub struct CbrSource {
    conn: ConnectionId,
    interarrival: f64,
    next_arrival: f64,
    /// Flits that were due but could not be injected (buffer full); they are
    /// retried before new arrivals — the paper's source-interface
    /// backpressure.
    backlog: u32,
}

impl CbrSource {
    /// Creates a source for `conn` with the given inter-arrival period in
    /// flit cycles, starting at a random phase.
    ///
    /// # Panics
    ///
    /// Panics if `interarrival_cycles` is not positive and finite.
    pub fn new(conn: ConnectionId, interarrival_cycles: f64, rng: &mut SeededRng) -> Self {
        assert!(
            interarrival_cycles.is_finite() && interarrival_cycles > 0.0,
            "CBR inter-arrival must be positive"
        );
        CbrSource {
            conn,
            interarrival: interarrival_cycles,
            next_arrival: rng.uniform(0.0, interarrival_cycles),
            backlog: 0,
        }
    }

    /// The connection this source feeds.
    pub fn conn(&self) -> ConnectionId {
        self.conn
    }

    /// Number of flits due at or before `now` (advances the arrival clock).
    pub fn due(&mut self, now: Cycles) -> u32 {
        let mut due = self.backlog;
        self.backlog = 0;
        while self.next_arrival <= now.as_f64() {
            due += 1;
            self.next_arrival += self.interarrival;
        }
        due
    }

    /// Records that `n` due flits could not be injected and must be retried.
    pub fn defer(&mut self, n: u32) {
        self.backlog += n;
    }

    /// Injects all due flits into `router`, deferring on backpressure.
    /// Returns the number injected.
    pub fn pump(&mut self, router: &mut Router, now: Cycles) -> u32 {
        let due = self.due(now);
        let mut injected = 0;
        for _ in 0..due {
            if router.inject(self.conn, now).is_ok() {
                injected += 1;
            } else {
                self.defer(due - injected);
                break;
            }
        }
        injected
    }
}

/// One admitted connection of a CBR workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CbrConnection {
    /// The router's connection id.
    pub id: ConnectionId,
    /// The connection's data rate.
    pub rate: Bandwidth,
    /// Input port.
    pub input: PortId,
    /// Output port.
    pub output: PortId,
}

/// A CBR connection population admitted to a router, plus its sources.
#[derive(Debug, Clone)]
pub struct CbrWorkload {
    connections: Vec<CbrConnection>,
    sources: Vec<CbrSource>,
    offered: Bandwidth,
    attempts_failed: u32,
}

impl CbrWorkload {
    /// Builds a workload on `router` targeting `target_load` (fraction of
    /// total switch bandwidth, the paper's offered-load axis).
    ///
    /// Rates are drawn uniformly from `ladder`; ports are drawn uniformly at
    /// random, retrying a bounded number of times when a random pick fails
    /// admission. Building stops when the target is reached or no further
    /// connection can be admitted.
    pub fn build(
        router: &mut Router,
        ladder: &[Bandwidth],
        target_load: f64,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(!ladder.is_empty(), "rate ladder must be non-empty");
        assert!((0.0..=1.0).contains(&target_load), "load is a fraction of switch bandwidth");
        let dims = router.config();
        let ports = dims.ports();
        let capacity = dims.timing().link_rate() * ports as f64;
        let mut offered = Bandwidth::ZERO;
        let mut connections = Vec::new();
        let mut sources = Vec::new();
        let mut attempts_failed = 0u32;
        // Each failed attempt leaves the router unchanged, so a bounded
        // number of retries cannot leak resources.
        let max_failures = 200 + ports as u32 * 64;

        while offered.fraction_of(capacity) < target_load && attempts_failed < max_failures {
            let rate = *rng.pick(ladder);
            // Never overshoot the target by more than one rung: skip rates
            // that would exceed it when smaller rungs exist.
            if (offered + rate).fraction_of(capacity) > target_load + ladder[0].fraction_of(capacity)
                && rate > ladder[0]
            {
                attempts_failed += 1;
                continue;
            }
            let input = PortId(rng.index(ports) as u8);
            let output = PortId(rng.index(ports) as u8);
            match router.establish(ConnectionRequest {
                input,
                output,
                class: QosClass::Cbr { rate },
            }) {
                Ok(id) => {
                    offered += rate;
                    let interarrival = dims.timing().interarrival_cycles(rate);
                    sources.push(CbrSource::new(id, interarrival, rng));
                    connections.push(CbrConnection { id, rate, input, output });
                }
                Err(
                    EstablishError::Admission(_)
                    | EstablishError::NoFreeInputVc
                    | EstablishError::NoFreeOutputVc,
                ) => {
                    attempts_failed += 1;
                }
                Err(e @ EstablishError::InvalidPort { .. }) => {
                    unreachable!("ports drawn in range: {e}")
                }
            }
        }

        CbrWorkload { connections, sources, offered, attempts_failed }
    }

    /// The admitted connections.
    pub fn connections(&self) -> &[CbrConnection] {
        &self.connections
    }

    /// Total offered bandwidth of admitted connections.
    pub fn offered_bandwidth(&self) -> Bandwidth {
        self.offered
    }

    /// Achieved offered load as a fraction of `ports × link_rate`.
    pub fn offered_load(&self, router: &Router) -> f64 {
        let dims = router.config();
        self.offered.fraction_of(dims.timing().link_rate() * dims.ports() as f64)
    }

    /// Establishment attempts that failed (admission or VC exhaustion).
    pub fn attempts_failed(&self) -> u32 {
        self.attempts_failed
    }

    /// Injects all due flits of every source for cycle `now`.
    /// Returns the number of flits injected.
    pub fn pump(&mut self, router: &mut Router, now: Cycles) -> u32 {
        self.sources.iter_mut().map(|s| s.pump(router, now)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::paper_rate_ladder;
    use mmr_core::router::RouterConfig;

    fn rng() -> SeededRng {
        SeededRng::new(99)
    }

    #[test]
    fn source_paces_at_interarrival() {
        let mut r = rng();
        let mut src = CbrSource::new(ConnectionId(0), 10.0, &mut r);
        let mut total = 0;
        for t in 0..100 {
            total += src.due(Cycles(t));
        }
        assert_eq!(total, 10, "one flit per 10 cycles over 100 cycles");
    }

    #[test]
    fn source_phase_is_randomised() {
        let mut r = rng();
        let firsts: Vec<u32> = (0..8)
            .map(|_| {
                let mut s = CbrSource::new(ConnectionId(0), 100.0, &mut r);
                (0..100u64).find(|&t| s.due(Cycles(t)) > 0).expect("arrives within a period")
                    as u32
            })
            .collect();
        let distinct: std::collections::BTreeSet<_> = firsts.iter().collect();
        assert!(distinct.len() > 4, "phases differ: {firsts:?}");
    }

    #[test]
    fn deferred_flits_are_retried() {
        let mut r = rng();
        let mut src = CbrSource::new(ConnectionId(0), 5.0, &mut r);
        let due = src.due(Cycles(20));
        assert!(due >= 3);
        src.defer(due);
        assert_eq!(src.due(Cycles(20)), due, "backlog carried forward");
    }

    #[test]
    fn fractional_interarrival_is_exact() {
        let mut r = rng();
        // 2.5-cycle period -> exactly 40 flits in 100 cycles.
        let mut src = CbrSource::new(ConnectionId(0), 2.5, &mut r);
        let total: u32 = (0..100).map(|t| src.due(Cycles(t))).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn workload_reaches_target_load() {
        let mut router = RouterConfig::paper_default().seed(5).build();
        let mut r = rng();
        let w = CbrWorkload::build(&mut router, &paper_rate_ladder(), 0.5, &mut r);
        let load = w.offered_load(&router);
        assert!((load - 0.5).abs() < 0.05, "achieved {load}");
        assert_eq!(w.connections().len(), router.connections());
        assert!(w.connections().len() > 50, "many small connections expected");
    }

    #[test]
    fn workload_high_load_is_achievable() {
        let mut router = RouterConfig::paper_default().seed(6).build();
        let mut r = rng();
        let w = CbrWorkload::build(&mut router, &paper_rate_ladder(), 0.95, &mut r);
        let load = w.offered_load(&router);
        assert!(load > 0.90, "achieved {load} of 0.95 target");
    }

    #[test]
    fn workload_pump_injects_flits() {
        let mut router = RouterConfig::paper_default().seed(7).build();
        let mut r = rng();
        let mut w = CbrWorkload::build(&mut router, &paper_rate_ladder(), 0.3, &mut r);
        let injected: u32 = (0..2000).map(|t| w.pump(&mut router, Cycles(t))).sum();
        assert!(injected > 100, "flits flow: {injected}");
    }

    #[test]
    fn zero_load_builds_empty_workload() {
        let mut router = RouterConfig::paper_default().seed(8).build();
        let mut r = rng();
        let w = CbrWorkload::build(&mut router, &paper_rate_ladder(), 0.0, &mut r);
        assert!(w.connections().is_empty());
        assert_eq!(w.offered_bandwidth(), Bandwidth::ZERO);
    }
}
