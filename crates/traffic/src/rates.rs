//! The paper's connection-rate ladder.
//!
//! §5: "Connections were randomly selected from the set (64 Kbps, 128 Kbps,
//! 1.54 Mbps, 2 Mbps, 5 Mbps, 10 Mbps, 20 Mbps, 55 Mbps, 120 Mbps) and
//! assigned to random input and output ports on the router." (The 10/20/120
//! values are reconstructed from the OCR'd text; see DESIGN.md.)

use mmr_sim::Bandwidth;

/// The nine CBR rates of the paper's evaluation, ascending.
pub fn paper_rate_ladder() -> [Bandwidth; 9] {
    [
        Bandwidth::from_kbps(64.0),   // voice
        Bandwidth::from_kbps(128.0),  // ISDN
        Bandwidth::from_mbps(1.54),   // T1
        Bandwidth::from_mbps(2.0),    // E1 / compressed video
        Bandwidth::from_mbps(5.0),    // MPEG-2 SD
        Bandwidth::from_mbps(10.0),   // high-quality video
        Bandwidth::from_mbps(20.0),   // MPEG-2 HD
        Bandwidth::from_mbps(55.0),   // uncompressed SD tiles
        Bandwidth::from_mbps(120.0),  // HDTV contribution feed
    ]
}

/// The same ladder scaled so its largest rate keeps the same *fraction* of a
/// different link speed — used by the link-speed ablation (155/622 Mbps
/// links behave "qualitatively the same", §5).
pub fn scaled_rate_ladder(scale: f64) -> [Bandwidth; 9] {
    paper_rate_ladder().map(|r| r * scale)
}

/// Mean of the ladder (useful for estimating connection counts per load).
pub fn ladder_mean() -> Bandwidth {
    let ladder = paper_rate_ladder();
    ladder.iter().copied().sum::<Bandwidth>() / ladder.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_ascending_with_nine_entries() {
        let ladder = paper_rate_ladder();
        assert_eq!(ladder.len(), 9);
        for pair in ladder.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        assert_eq!(ladder[0], Bandwidth::from_kbps(64.0));
        assert_eq!(ladder[8], Bandwidth::from_mbps(120.0));
    }

    #[test]
    fn mean_is_about_24_mbps() {
        let m = ladder_mean().mbps();
        assert!((m - 23.74).abs() < 0.1, "mean {m} Mbps");
    }

    #[test]
    fn scaling_preserves_ratios() {
        let half = scaled_rate_ladder(0.5);
        let full = paper_rate_ladder();
        for (h, f) in half.iter().zip(&full) {
            assert!((h.bits_per_sec() * 2.0 - f.bits_per_sec()).abs() < 1e-6);
        }
    }
}
