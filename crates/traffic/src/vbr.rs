//! Variable-bit-rate traffic: a synthetic MPEG-2 group-of-pictures model.
//!
//! The MMR project evaluated VBR service with MPEG-2 video traces in
//! follow-up work; the traces themselves are not available, so this module
//! generates the closest synthetic equivalent (documented in DESIGN.md):
//! a deterministic 12-frame GoP pattern (`IBBPBBPBBPBB`) at 25 frames/s with
//! lognormal frame-size jitter around type-dependent means. This exercises
//! the identical code path — VBR connections with (permanent, peak)
//! reservations, three-phase link scheduling and priority-ordered excess
//! service.

use mmr_core::ids::ConnectionId;
use mmr_core::router::Router;
use mmr_sim::{Bandwidth, Cycles, FlitTiming, SeededRng};

/// MPEG frame types in transmission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Intra-coded frame (largest).
    I,
    /// Predicted frame.
    P,
    /// Bidirectionally predicted frame (smallest).
    B,
}

/// The synthetic MPEG-2 GoP source model.
#[derive(Debug, Clone)]
pub struct MpegGopModel {
    /// Mean I-frame size in bits.
    pub i_bits: f64,
    /// Mean P-frame size in bits.
    pub p_bits: f64,
    /// Mean B-frame size in bits.
    pub b_bits: f64,
    /// Lognormal sigma of frame-size jitter (0 = deterministic).
    pub sigma: f64,
    /// Frames per second.
    pub fps: f64,
}

/// The canonical 12-frame GoP pattern.
pub const GOP_PATTERN: [FrameType; 12] = [
    FrameType::I,
    FrameType::B,
    FrameType::B,
    FrameType::P,
    FrameType::B,
    FrameType::B,
    FrameType::P,
    FrameType::B,
    FrameType::B,
    FrameType::P,
    FrameType::B,
    FrameType::B,
];

impl MpegGopModel {
    /// A ~5 Mbps mean-rate MPEG-2 SD stream (the classic simulation
    /// setting): 25 fps, I/P/B ≈ 540/270/135 kbit, giving a GoP of
    /// ~2.43 Mbit over 0.48 s.
    pub fn sd_5mbps() -> Self {
        MpegGopModel { i_bits: 540_000.0, p_bits: 270_000.0, b_bits: 135_000.0, sigma: 0.25, fps: 25.0 }
    }

    /// Mean size of one frame of the given type, in bits.
    pub fn mean_bits(&self, frame: FrameType) -> f64 {
        match frame {
            FrameType::I => self.i_bits,
            FrameType::P => self.p_bits,
            FrameType::B => self.b_bits,
        }
    }

    /// The stream's mean (permanent) rate over a GoP.
    pub fn mean_rate(&self) -> Bandwidth {
        let gop_bits: f64 = GOP_PATTERN.iter().map(|&f| self.mean_bits(f)).sum();
        let gop_seconds = GOP_PATTERN.len() as f64 / self.fps;
        Bandwidth::from_bps(gop_bits / gop_seconds)
    }

    /// The stream's peak rate: the largest frame (I, with +2σ jitter)
    /// delivered within one frame interval.
    pub fn peak_rate(&self) -> Bandwidth {
        let worst_frame = self.i_bits * (2.0 * self.sigma).exp();
        Bandwidth::from_bps(worst_frame * self.fps)
    }

    /// Samples the size of one frame in bits.
    pub fn sample_bits(&self, frame: FrameType, rng: &mut SeededRng) -> f64 {
        let mean = self.mean_bits(frame);
        if self.sigma == 0.0 {
            mean
        } else {
            // Lognormal with the requested mean: mu = ln(mean) - sigma²/2.
            let mu = mean.ln() - self.sigma * self.sigma / 2.0;
            rng.lognormal(mu, self.sigma)
        }
    }

    /// Frame interval in flit cycles on a link with the given timing.
    pub fn frame_interval_cycles(&self, timing: FlitTiming) -> f64 {
        (1.0 / self.fps) * 1e9 / timing.cycle_time_ns()
    }
}

/// A VBR source: paces the flits of successive frames of an
/// [`MpegGopModel`] into a router connection, spreading each frame's flits
/// evenly over its frame interval.
#[derive(Debug, Clone)]
pub struct VbrSource {
    conn: ConnectionId,
    model: MpegGopModel,
    timing: FlitTiming,
    rng: SeededRng,
    frame_index: usize,
    /// Cycle at which the current frame started.
    frame_start: f64,
    /// Flits of the current frame and how many have been injected.
    frame_flits: u32,
    injected_in_frame: u32,
    backlog: u32,
}

impl VbrSource {
    /// Creates a source for `conn` with its own RNG stream.
    pub fn new(conn: ConnectionId, model: MpegGopModel, timing: FlitTiming, rng: SeededRng) -> Self {
        let mut src = VbrSource {
            conn,
            model,
            timing,
            rng,
            frame_index: 0,
            frame_start: 0.0,
            frame_flits: 0,
            injected_in_frame: 0,
            backlog: 0,
        };
        src.begin_frame();
        src
    }

    /// The connection this source feeds.
    pub fn conn(&self) -> ConnectionId {
        self.conn
    }

    fn begin_frame(&mut self) {
        let ftype = GOP_PATTERN[self.frame_index % GOP_PATTERN.len()];
        let bits = self.model.sample_bits(ftype, &mut self.rng);
        self.frame_flits = (bits / f64::from(self.timing.flit_bits())).ceil() as u32;
        self.injected_in_frame = 0;
    }

    /// Number of flits due at or before `now`.
    pub fn due(&mut self, now: Cycles) -> u32 {
        let interval = self.model.frame_interval_cycles(self.timing);
        // Advance frames that have fully elapsed.
        while now.as_f64() >= self.frame_start + interval {
            // Any remainder of the old frame becomes immediately due.
            self.backlog += self.frame_flits - self.injected_in_frame;
            self.frame_start += interval;
            self.frame_index += 1;
            self.begin_frame();
        }
        // Within the current frame, flits are spread evenly.
        let elapsed = (now.as_f64() - self.frame_start).max(0.0);
        let target = ((elapsed / interval) * f64::from(self.frame_flits)).floor() as u32;
        let fresh = target.saturating_sub(self.injected_in_frame);
        self.injected_in_frame += fresh;
        let due = self.backlog + fresh;
        self.backlog = 0;
        due
    }

    /// Injects all due flits, deferring on backpressure. Returns the number
    /// injected.
    pub fn pump(&mut self, router: &mut Router, now: Cycles) -> u32 {
        let due = self.due(now);
        let mut injected = 0;
        for _ in 0..due {
            if router.inject(self.conn, now).is_ok() {
                injected += 1;
            } else {
                self.backlog += due - injected;
                break;
            }
        }
        injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gop_pattern_shape() {
        assert_eq!(GOP_PATTERN.len(), 12);
        assert_eq!(GOP_PATTERN.iter().filter(|&&f| f == FrameType::I).count(), 1);
        assert_eq!(GOP_PATTERN.iter().filter(|&&f| f == FrameType::P).count(), 3);
        assert_eq!(GOP_PATTERN.iter().filter(|&&f| f == FrameType::B).count(), 8);
    }

    #[test]
    fn sd_model_mean_rate_is_about_5mbps() {
        let m = MpegGopModel::sd_5mbps();
        let mean = m.mean_rate().mbps();
        assert!((mean - 5.06).abs() < 0.5, "mean {mean} Mbps");
        assert!(m.peak_rate() > m.mean_rate(), "peak above mean");
        // Peak is one worst-case I frame per interval: ~10+ Mbps.
        assert!(m.peak_rate().mbps() > 10.0);
    }

    #[test]
    fn deterministic_sampling_with_zero_sigma() {
        let mut m = MpegGopModel::sd_5mbps();
        m.sigma = 0.0;
        let mut rng = SeededRng::new(1);
        assert_eq!(m.sample_bits(FrameType::I, &mut rng), 540_000.0);
    }

    #[test]
    fn lognormal_sampling_centres_on_mean() {
        let m = MpegGopModel::sd_5mbps();
        let mut rng = SeededRng::new(2);
        let n = 20_000;
        let mean: f64 =
            (0..n).map(|_| m.sample_bits(FrameType::I, &mut rng)).sum::<f64>() / f64::from(n);
        assert!((mean / 540_000.0 - 1.0).abs() < 0.05, "sampled mean {mean}");
    }

    #[test]
    fn source_emits_frame_sized_bursts() {
        let mut m = MpegGopModel::sd_5mbps();
        m.sigma = 0.0;
        let timing = FlitTiming::paper_default();
        let interval = m.frame_interval_cycles(timing);
        let mut src = VbrSource::new(ConnectionId(0), m.clone(), timing, SeededRng::new(3));
        // Over exactly one frame interval, the source should emit the
        // I-frame's worth of flits (frame 0 of the GoP).
        let mut total = 0u32;
        let cycles = interval.ceil() as u64;
        for t in 0..cycles {
            total += src.due(Cycles(t));
        }
        let expected = (540_000.0 / 128.0_f64).ceil() as u32;
        assert!(
            (i64::from(total) - i64::from(expected)).abs() <= 1,
            "one I frame of flits: got {total}, expected ~{expected}"
        );
    }

    #[test]
    fn long_run_rate_matches_mean() {
        let m = MpegGopModel::sd_5mbps();
        let timing = FlitTiming::paper_default();
        let mut src = VbrSource::new(ConnectionId(0), m.clone(), timing, SeededRng::new(4));
        // 4 GoPs worth of cycles.
        let cycles = (m.frame_interval_cycles(timing) * 48.0) as u64;
        let total: u64 = (0..cycles).map(|t| u64::from(src.due(Cycles(t)))).sum();
        let bits = total as f64 * 128.0;
        let seconds = cycles as f64 * timing.cycle_time_ns() * 1e-9;
        let rate = bits / seconds / 1e6;
        let mean = m.mean_rate().mbps();
        assert!((rate / mean - 1.0).abs() < 0.25, "long-run {rate} Mbps vs mean {mean}");
    }
}
