//! Workload generation and experiment driving for the MMR evaluation.
//!
//! The paper's simulation study (§5) runs constant-bit-rate connections with
//! rates "randomly selected from the set (64 Kbps … 120 Mbps) and assigned
//! to random input and output ports". This crate builds those workloads and
//! the measurement loop around them:
//!
//! * [`rates`] — the nine-rate ladder and scaled variants.
//! * [`cbr`] — paced CBR sources and load-targeted workload construction.
//! * [`vbr`] — a synthetic MPEG-2 GoP model for VBR traffic (the paper's
//!   follow-up workload; see DESIGN.md for the substitution note).
//! * [`besteffort`] — Poisson single-flit control/best-effort packets.
//! * [`calls`] — call-level connection arrivals/departures for admission
//!   (blocking-probability) studies.
//! * [`driver`] — the warm-up + measure experiment procedure producing the
//!   delay/jitter/utilization numbers of Figures 3–5.
//!
//! # Example
//!
//! ```
//! use mmr_core::router::RouterConfig;
//! use mmr_traffic::driver::Experiment;
//!
//! // One quick point of the delay-vs-load curve.
//! let result = Experiment::new(RouterConfig::paper_default().vcs_per_port(32), 0.4)
//!     .windows(500, 2_000)
//!     .run();
//! assert!(result.offered_load > 0.3);
//! assert!(result.flits_measured > 0);
//! ```

pub mod besteffort;
pub mod calls;
pub mod cbr;
pub mod churn;
pub mod driver;
pub mod rates;
pub mod vbr;

pub use besteffort::PoissonPacketSource;
pub use calls::{run_calls, CallStats, CallWorkload};
pub use churn::{
    ChurnConfig, ChurnEvent, ChurnEventKind, ChurnSchedule, DiurnalCurve, SessionClass,
    SessionPlan,
};
pub use cbr::{CbrConnection, CbrSource, CbrWorkload};
pub use driver::{Experiment, ExperimentResult, RateClassResult};
pub use rates::{ladder_mean, paper_rate_ladder, scaled_rate_ladder};
pub use vbr::{FrameType, MpegGopModel, VbrSource, GOP_PATTERN};
