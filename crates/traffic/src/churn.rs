//! Dynamic session churn: the workload the admission controller survives.
//!
//! [`calls`](crate::calls) evaluates admission at the call level against a
//! single router with exponential holding times and a flat arrival rate.
//! This module generates the *network-level* churn the overload experiments
//! need: a Poisson arrival process shaped by a configurable diurnal load
//! curve (thinning), **heavy-tailed** lognormal holding times (a few
//! marathon sessions dominate the carried load, as in real video-server
//! traces), and a session mix drawn from the paper's §5 rate ladder plus a
//! best-effort fraction. The whole schedule — arrival cycles, holding
//! times, endpoints, and rates — is a pure function of one `u64` seed via
//! [`SeededRng`], so every consumer (bench sweeps, the conformance fuzzer,
//! property tests) replays the identical session history.
//!
//! The generator emits a [`ChurnSchedule`]: the per-session plans plus a
//! merged, time-sorted arrival/departure event tape that drivers replay
//! against an admission controller.

use mmr_sim::{Bandwidth, Cycles, SeededRng};

use crate::rates::paper_rate_ladder;

/// A periodic load curve modulating the Poisson arrival intensity.
///
/// The instantaneous arrival rate at cycle `t` is
/// `peak_rate * intensity(t)` where `intensity` traces a raised cosine
/// between `trough` (relative night-time load) and `1.0` (peak) with the
/// given period. `DiurnalCurve::flat()` disables the modulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalCurve {
    /// Relative intensity at the bottom of the curve, in `[0, 1]`.
    pub trough: f64,
    /// Cycles per full day/night period.
    pub period: f64,
}

impl DiurnalCurve {
    /// No modulation: intensity is `1.0` everywhere.
    pub fn flat() -> Self {
        DiurnalCurve { trough: 1.0, period: 1.0 }
    }

    /// A raised-cosine day/night cycle with the given relative trough.
    pub fn day_night(trough: f64, period: f64) -> Self {
        assert!((0.0..=1.0).contains(&trough), "trough must be in [0,1]");
        assert!(period > 0.0, "period must be positive");
        DiurnalCurve { trough, period }
    }

    /// Relative intensity in `[trough, 1]` at cycle `t` (peak at `t = 0`).
    pub fn intensity(&self, t: f64) -> f64 {
        if self.trough >= 1.0 {
            return 1.0;
        }
        let phase = (t / self.period) * std::f64::consts::TAU;
        let wave = 0.5 * (1.0 + phase.cos()); // 1 at peak, 0 at trough
        self.trough + (1.0 - self.trough) * wave
    }
}

/// What a churned session asks the network for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionClass {
    /// A CBR connection at rung `rung` of the paper's nine-rate ladder.
    Cbr {
        /// Index into [`paper_rate_ladder`], `0` = 64 Kbps … `8` = 120 Mbps.
        rung: usize,
    },
    /// A best-effort session: no bandwidth reservation, first to shed.
    BestEffort,
}

impl SessionClass {
    /// The guaranteed rate this class reserves (zero for best-effort).
    pub fn rate(&self) -> Bandwidth {
        match *self {
            SessionClass::Cbr { rung } => paper_rate_ladder()[rung.min(8)],
            SessionClass::BestEffort => Bandwidth::ZERO,
        }
    }
}

/// Parameters of a churn workload. All rates are per flit cycle.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Poisson arrival rate at the diurnal peak (sessions per cycle).
    pub peak_arrival_rate: f64,
    /// The diurnal modulation applied by thinning.
    pub diurnal: DiurnalCurve,
    /// Median session holding time in cycles (lognormal median = e^mu).
    pub median_holding: f64,
    /// Lognormal shape; larger is heavier-tailed. `0.0` degenerates to a
    /// fixed holding time.
    pub holding_sigma: f64,
    /// Inclusive rung range of the rate ladder sessions draw from.
    pub rungs: (usize, usize),
    /// Fraction of arrivals that are best-effort instead of CBR.
    pub best_effort_fraction: f64,
    /// Number of terminals endpoints are drawn from (src ≠ dst).
    pub endpoints: usize,
    /// Arrivals stop at this cycle (departures may land later).
    pub horizon: u64,
}

impl ChurnConfig {
    /// A modest default: flat curve, median 2 000-cycle holds, low rungs.
    pub fn new(peak_arrival_rate: f64, endpoints: usize, horizon: u64) -> Self {
        ChurnConfig {
            peak_arrival_rate,
            diurnal: DiurnalCurve::flat(),
            median_holding: 2_000.0,
            holding_sigma: 1.0,
            rungs: (0, 4),
            best_effort_fraction: 0.2,
            endpoints,
            horizon,
        }
    }

    /// Offered erlangs at the peak (mean concurrent sessions that *want*
    /// to be up): arrival rate × mean holding time. The lognormal mean is
    /// `median · e^(sigma²/2)`.
    pub fn peak_offered_erlangs(&self) -> f64 {
        let mean_holding = self.median_holding * (self.holding_sigma.powi(2) / 2.0).exp();
        self.peak_arrival_rate * mean_holding
    }
}

/// One session's full lifecycle, decided at generation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionPlan {
    /// Dense id, assigned in arrival order starting at 0.
    pub id: u32,
    /// Arrival cycle.
    pub arrives: Cycles,
    /// Departure cycle (`arrives` + holding, always strictly later).
    pub departs: Cycles,
    /// Source terminal index in `[0, endpoints)`.
    pub src: usize,
    /// Destination terminal index, never equal to `src`.
    pub dst: usize,
    /// Service class and rate rung.
    pub class: SessionClass,
}

/// What happens at a [`ChurnEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEventKind {
    /// The session requests admission.
    Arrival,
    /// The session hangs up voluntarily.
    Departure,
}

/// One entry of the merged, time-sorted event tape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// When the event fires.
    pub at: Cycles,
    /// The session it concerns (index into [`ChurnSchedule::sessions`]).
    pub session: u32,
    /// Arrival or departure.
    pub kind: ChurnEventKind,
}

/// A fully materialized churn workload: deterministic in the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSchedule {
    /// Per-session plans, in arrival order (`sessions[i].id == i`).
    pub sessions: Vec<SessionPlan>,
    /// Arrivals and departures merged and sorted by `(at, session, kind)`.
    /// Ties at the same cycle process departures first so a replacement
    /// arrival sees the freed bandwidth.
    pub events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// Generates the schedule for `cfg` from `seed`.
    ///
    /// Arrivals are a homogeneous Poisson process at `peak_arrival_rate`
    /// thinned by the diurnal curve (each candidate arrival survives with
    /// probability `intensity(t)`), which keeps the draw sequence — and
    /// therefore the schedule — a pure function of the seed regardless of
    /// how the curve is shaped.
    pub fn generate(cfg: &ChurnConfig, seed: u64) -> ChurnSchedule {
        assert!(cfg.peak_arrival_rate > 0.0, "arrival rate must be positive");
        assert!(cfg.median_holding >= 1.0, "median holding must be >= 1 cycle");
        assert!(cfg.endpoints >= 2, "need at least two endpoints");
        assert!(cfg.rungs.0 <= cfg.rungs.1 && cfg.rungs.1 < 9, "rung range out of ladder");
        assert!(
            (0.0..=1.0).contains(&cfg.best_effort_fraction),
            "best-effort fraction must be in [0,1]"
        );

        let mut rng = SeededRng::new(seed ^ 0xC48A_4E5F_5EED_0001); // churn stream salt
        let mu = cfg.median_holding.ln();
        let mut sessions = Vec::new();
        let mut t = 0.0f64;
        loop {
            t += rng.exponential(1.0 / cfg.peak_arrival_rate).max(1.0);
            if t >= cfg.horizon as f64 {
                break;
            }
            // Thinning: one chance draw per candidate, survivors become
            // sessions. The draw happens unconditionally so a different
            // curve shape never perturbs later sessions' randomness.
            let keep = rng.chance(cfg.diurnal.intensity(t));
            let holding = rng.lognormal(mu, cfg.holding_sigma).max(1.0);
            let src = rng.index(cfg.endpoints);
            let mut dst = rng.index(cfg.endpoints);
            if dst == src {
                dst = (dst + 1) % cfg.endpoints;
            }
            let best_effort = rng.chance(cfg.best_effort_fraction);
            let span = cfg.rungs.1 - cfg.rungs.0 + 1;
            let rung = cfg.rungs.0 + rng.index(span);
            if !keep {
                continue;
            }
            let arrives = Cycles(t as u64);
            let departs = Cycles(t as u64 + holding.ceil() as u64);
            let class = if best_effort {
                SessionClass::BestEffort
            } else {
                SessionClass::Cbr { rung }
            };
            let id = sessions.len() as u32;
            sessions.push(SessionPlan { id, arrives, departs, src, dst, class });
        }

        let mut events = Vec::with_capacity(sessions.len() * 2);
        for s in &sessions {
            events.push(ChurnEvent { at: s.arrives, session: s.id, kind: ChurnEventKind::Arrival });
            events.push(ChurnEvent {
                at: s.departs,
                session: s.id,
                kind: ChurnEventKind::Departure,
            });
        }
        // Departures sort before arrivals at the same cycle (freed capacity
        // is visible to the newcomer); session id breaks remaining ties.
        events.sort_by_key(|e| {
            (e.at, matches!(e.kind, ChurnEventKind::Arrival) as u8, e.session)
        });
        ChurnSchedule { sessions, events }
    }

    /// Number of sessions whose `[arrives, departs)` interval covers `t` —
    /// the offered concurrency the admission controller faces at `t`.
    pub fn concurrent_at(&self, t: Cycles) -> usize {
        self.sessions.iter().filter(|s| s.arrives <= t && t < s.departs).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ChurnConfig {
        ChurnConfig::new(0.01, 9, 20_000)
    }

    #[test]
    fn same_seed_reproduces_the_schedule_exactly() {
        let a = ChurnSchedule::generate(&cfg(), 0x0D1E);
        let b = ChurnSchedule::generate(&cfg(), 0x0D1E);
        assert_eq!(a, b);
        assert!(!a.sessions.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChurnSchedule::generate(&cfg(), 1);
        let b = ChurnSchedule::generate(&cfg(), 2);
        assert_ne!(a, b);
    }

    #[test]
    fn events_are_sorted_and_paired() {
        let s = ChurnSchedule::generate(&cfg(), 7);
        assert_eq!(s.events.len(), s.sessions.len() * 2);
        for w in s.events.windows(2) {
            assert!(w[0].at <= w[1].at, "events out of order");
        }
        for p in &s.sessions {
            assert!(p.arrives < p.departs, "session must hold for at least one cycle");
            assert_ne!(p.src, p.dst);
            assert_eq!(s.sessions[p.id as usize].id, p.id);
        }
    }

    #[test]
    fn diurnal_trough_thins_arrivals() {
        // Compare a flat curve against a hard day/night curve whose trough
        // removes 90% of off-peak arrivals: the shaped schedule must be
        // substantially smaller, and its per-window arrival counts must
        // follow the curve (peak window >= trough window).
        let flat = ChurnSchedule::generate(&cfg(), 42);
        let mut shaped_cfg = cfg();
        shaped_cfg.diurnal = DiurnalCurve::day_night(0.1, 20_000.0);
        let shaped = ChurnSchedule::generate(&shaped_cfg, 42);
        assert!(
            shaped.sessions.len() < flat.sessions.len(),
            "thinning removed nothing: {} vs {}",
            shaped.sessions.len(),
            flat.sessions.len()
        );
        let count_in = |s: &ChurnSchedule, lo: u64, hi: u64| {
            s.sessions.iter().filter(|p| lo <= p.arrives.0 && p.arrives.0 < hi).count()
        };
        // Peak is centered at t=0 and t=period; trough at period/2.
        let peak = count_in(&shaped, 0, 5_000) + count_in(&shaped, 15_000, 20_000);
        let trough = count_in(&shaped, 5_000, 15_000);
        assert!(peak > trough, "diurnal shape not visible: peak {peak} trough {trough}");
    }

    #[test]
    fn holding_times_are_heavy_tailed() {
        let mut c = cfg();
        c.holding_sigma = 1.5;
        c.horizon = 200_000;
        let s = ChurnSchedule::generate(&c, 3);
        let mut holds: Vec<u64> =
            s.sessions.iter().map(|p| p.departs.0 - p.arrives.0).collect();
        holds.sort_unstable();
        let median = holds[holds.len() / 2] as f64;
        let p99 = holds[holds.len() * 99 / 100] as f64;
        // Lognormal(sigma=1.5): p99/median = e^(2.33*1.5) ≈ 33. Even with
        // sampling noise the ratio must dwarf an exponential's (~6.6).
        assert!(p99 / median > 10.0, "tail too light: median {median}, p99 {p99}");
    }

    #[test]
    fn class_mix_spans_ladder_and_best_effort() {
        let mut c = cfg();
        c.horizon = 100_000;
        let s = ChurnSchedule::generate(&c, 9);
        let be = s
            .sessions
            .iter()
            .filter(|p| p.class == SessionClass::BestEffort)
            .count();
        assert!(be > 0, "no best-effort sessions drawn");
        assert!(be < s.sessions.len(), "everything was best-effort");
        for p in &s.sessions {
            if let SessionClass::Cbr { rung } = p.class {
                assert!((c.rungs.0..=c.rungs.1).contains(&rung));
                assert!(p.class.rate() > Bandwidth::ZERO);
            }
        }
    }

    #[test]
    fn concurrency_query_matches_event_tape() {
        let s = ChurnSchedule::generate(&cfg(), 11);
        let t = Cycles(10_000);
        let by_events = s
            .events
            .iter()
            .filter(|e| e.at <= t)
            .map(|e| match e.kind {
                ChurnEventKind::Arrival => 1i64,
                ChurnEventKind::Departure => -1,
            })
            .sum::<i64>();
        // events at exactly t: departures (at <= t, t < departs fails) and
        // arrivals (arrives <= t holds) are counted consistently by both.
        assert_eq!(s.concurrent_at(t) as i64, by_events);
    }
}
