//! The single-router experiment driver used by the paper's evaluation.
//!
//! §5: "Simulation experiments were conducted using a C++ discrete event
//! simulator that models a single router … The simulations were run until
//! steady state was reached and statistics gathered over approximately
//! 100,000 router cycles." [`Experiment`] reproduces that procedure: build a
//! CBR population at a target offered load, warm the router up, then measure
//! per-flit delay and per-connection jitter over the measurement window.

use mmr_core::router::RouterConfig;
use mmr_sim::{Bandwidth, Cycles, DelayJitterRecorder, SeededRng, TailSummary, Warmup};

use crate::cbr::CbrWorkload;
use crate::rates::paper_rate_ladder;

/// Configuration of one experiment run (one point of one figure series).
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Router configuration (arbiter, candidates, dimensions).
    pub router: RouterConfig,
    /// Target offered load as a fraction of total switch bandwidth.
    pub target_load: f64,
    /// Warm-up cycles before statistics are gathered.
    pub warmup_cycles: u64,
    /// Measured cycles (the paper uses ≈100,000).
    pub measure_cycles: u64,
    /// Workload seed (connection mix, phases, PIM randomness).
    pub seed: u64,
    /// Connection-rate ladder; defaults to the paper's nine rates.
    pub ladder: Vec<Bandwidth>,
    /// Force dense per-cycle stepping. By default the driver skips ahead to
    /// the workload's next due injection whenever the router is quiescent —
    /// a skipped cycle provably injects nothing, transmits nothing, and
    /// records nothing, so results are byte-identical either way (the dense
    /// engine exists as the oracle for differential tests; DESIGN.md §9).
    pub dense_stepping: bool,
}

impl Experiment {
    /// An experiment with the paper's measurement procedure on the given
    /// router configuration and load.
    pub fn new(router: RouterConfig, target_load: f64) -> Self {
        Experiment {
            router,
            target_load,
            warmup_cycles: 20_000,
            measure_cycles: 100_000,
            seed: 1999,
            ladder: paper_rate_ladder().to_vec(),
            dense_stepping: false,
        }
    }

    /// Selects the stepping engine (`true` = dense reference engine).
    pub fn dense_stepping(mut self, dense: bool) -> Self {
        self.dense_stepping = dense;
        self
    }

    /// Overrides the warm-up and measurement windows (shorter runs for
    /// tests and smoke benchmarks).
    pub fn windows(mut self, warmup: u64, measure: u64) -> Self {
        self.warmup_cycles = warmup;
        self.measure_cycles = measure;
        self
    }

    /// Overrides the workload seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the rate ladder.
    pub fn ladder(mut self, ladder: Vec<Bandwidth>) -> Self {
        self.ladder = ladder;
        self
    }

    /// Runs the experiment and gathers the paper's metrics.
    pub fn run(&self) -> ExperimentResult {
        let mut router = self.router.clone().seed(self.seed ^ 0xA5A5_5A5A).build();
        let mut rng = SeededRng::new(self.seed);
        let mut workload =
            CbrWorkload::build(&mut router, &self.ladder, self.target_load, &mut rng);
        let offered_load = workload.offered_load(&router);
        let connections = workload.connections().len();

        // Dense per-connection lookup tables replace the former BTreeMaps on
        // the measurement fast path: `rates` holds the distinct rate rungs in
        // ascending order, `slot_of_conn` maps a connection id to its rung.
        let mut rates: Vec<u64> =
            workload.connections().iter().map(|c| c.rate.bits_per_sec() as u64).collect();
        rates.sort_unstable();
        rates.dedup();
        let max_raw =
            workload.connections().iter().map(|c| c.id.raw() as usize).max().unwrap_or(0);
        let mut slot_of_conn = vec![usize::MAX; max_raw + 1];
        for c in workload.connections() {
            let slot = rates.binary_search(&(c.rate.bits_per_sec() as u64)).expect("rate present");
            slot_of_conn[c.id.raw() as usize] = slot;
        }
        let mut rate_recorders = vec![DelayJitterRecorder::default(); rates.len()];

        let warmup = Warmup::until(Cycles(self.warmup_cycles));
        let total = self.warmup_cycles + self.measure_cycles;
        let mut recorder = DelayJitterRecorder::new();
        let mut measured_flits = 0u64;
        let mut report = mmr_core::router::StepReport::default();

        let mut t = 0u64;
        while t < total {
            let now = Cycles(t);
            workload.pump(&mut router, now);
            router.step_into(now, &mut report);
            workload.note_transmitted(&report.transmitted);
            if warmup.measuring(now) {
                for tx in &report.transmitted {
                    recorder.record(tx.conn.raw(), tx.delay);
                    if let Some(&slot) = slot_of_conn.get(tx.conn.raw() as usize) {
                        if slot != usize::MAX {
                            rate_recorders[slot].record(tx.conn.raw(), tx.delay);
                        }
                    }
                }
                measured_flits += report.transmitted.len() as u64;
            }
            t += 1;
            // Event skip: with the router drained quiescent and no source
            // due before `due`, every cycle in between is a provable no-op
            // — no injection, no transmission, nothing recorded. Jump
            // straight to the next due injection (pending retries report
            // `due = 0` and parked sources imply buffered flits, so both
            // hold the loop dense).
            if !self.dense_stepping
                && report.transmitted.is_empty()
                && router.is_quiescent()
            {
                match workload.next_due_cycle() {
                    Some(due) if due > t => {
                        let until = due.min(total);
                        router.note_idle_cycles(until - t);
                        t = until;
                    }
                    Some(_) => {}
                    None => {
                        router.note_idle_cycles(total - t);
                        break;
                    }
                }
            }
        }

        let dims = router.config();
        let timing = dims.timing();
        ExperimentResult {
            offered_load,
            connections,
            mean_delay_cycles: recorder.mean_delay_cycles(),
            mean_delay_us: timing.cycles_f64_to_time(recorder.mean_delay_cycles()).us(),
            max_delay_cycles: recorder.max_delay_cycles(),
            mean_jitter_cycles: recorder.mean_jitter_cycles(),
            mean_drift_cycles: recorder.mean_drift_cycles(),
            delay_tail: recorder.delay_tail(),
            jitter_tail: recorder.jitter_tail(),
            utilization: measured_flits as f64
                / (self.measure_cycles as f64 * dims.ports() as f64),
            flits_measured: measured_flits,
            bank_conflicts: router.stats().bank_conflicts,
            per_rate: rates
                .into_iter()
                .zip(rate_recorders)
                .filter(|(_, rec)| rec.flits() > 0)
                .map(|(rate_bps, rec)| RateClassResult {
                    rate: Bandwidth::from_bps(rate_bps as f64),
                    mean_delay_cycles: rec.mean_delay_cycles(),
                    mean_jitter_cycles: rec.mean_jitter_cycles(),
                    flits: rec.flits(),
                })
                .collect(),
        }
    }
}

/// Per-rate-class metrics of one experiment run (the §5.2 observation that
/// "actual jitter values for high-speed connections will be even less and
/// those for low-speed connections will be relatively higher").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateClassResult {
    /// The connection rate of this class.
    pub rate: Bandwidth,
    /// Flit-weighted mean delay of this class, in cycles.
    pub mean_delay_cycles: f64,
    /// Connection-weighted mean jitter of this class, in cycles.
    pub mean_jitter_cycles: f64,
    /// Flits this class transmitted in the measurement window.
    pub flits: u64,
}

/// The metrics of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Offered load actually admitted (the x-axis of every figure).
    pub offered_load: f64,
    /// Number of admitted connections.
    pub connections: usize,
    /// Mean per-flit switch delay in flit cycles.
    pub mean_delay_cycles: f64,
    /// Mean per-flit switch delay in microseconds (Figure 4/5 y-axis).
    pub mean_delay_us: f64,
    /// Worst single-flit delay observed, in cycles.
    pub max_delay_cycles: f64,
    /// Connection-weighted mean jitter in flit cycles (Figure 3/5 y-axis).
    pub mean_jitter_cycles: f64,
    /// Connection-weighted mean *signed* successive-delay difference (a
    /// drift/stability indicator; see
    /// [`mmr_sim::DelayJitterRecorder::mean_drift_cycles`]).
    pub mean_drift_cycles: f64,
    /// p50/p95/p99 switch delay in cycles; `None` when no flit was measured.
    pub delay_tail: Option<TailSummary>,
    /// p50/p95/p99 flit-weighted |Δdelay| jitter in cycles.
    pub jitter_tail: Option<TailSummary>,
    /// Measured switch utilization (flits per port per cycle).
    pub utilization: f64,
    /// Flits measured after warm-up.
    pub flits_measured: u64,
    /// VCM bank-budget violations over the whole run (zero when the bank
    /// array is sized for the load; see the A5 ablation).
    pub bank_conflicts: u64,
    /// Breakdown by connection rate class, ascending by rate.
    pub per_rate: Vec<RateClassResult>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmr_core::arbiter::ArbiterKind;

    fn quick(router: RouterConfig, load: f64) -> ExperimentResult {
        Experiment::new(router, load).windows(2_000, 10_000).seed(7).run()
    }

    fn small() -> RouterConfig {
        RouterConfig::paper_default().vcs_per_port(64).candidates(4)
    }

    #[test]
    fn experiment_measures_flits_at_load() {
        let r = quick(small(), 0.5);
        assert!(r.offered_load > 0.45 && r.offered_load < 0.55, "load {}", r.offered_load);
        assert!(r.flits_measured > 1_000, "flits {}", r.flits_measured);
        assert!(r.connections > 20);
        // Utilization tracks offered load for CBR traffic below saturation.
        assert!((r.utilization - r.offered_load).abs() < 0.08,
            "utilization {} vs load {}", r.utilization, r.offered_load);
    }

    #[test]
    fn delay_grows_with_load() {
        let low = quick(small(), 0.2);
        let high = quick(small(), 0.9);
        assert!(
            high.mean_delay_cycles > low.mean_delay_cycles,
            "delay at 90% ({}) above 20% ({})",
            high.mean_delay_cycles,
            low.mean_delay_cycles
        );
    }

    #[test]
    fn biased_beats_fixed_at_high_load() {
        // The paper's headline qualitative result, on a small config.
        let biased = quick(small().arbiter(ArbiterKind::BiasedPriority).candidates(2), 0.8);
        let fixed = quick(small().arbiter(ArbiterKind::FixedPriority).candidates(2), 0.8);
        assert!(
            biased.mean_delay_cycles < fixed.mean_delay_cycles,
            "biased {} < fixed {}",
            biased.mean_delay_cycles,
            fixed.mean_delay_cycles
        );
        assert!(
            biased.mean_jitter_cycles < fixed.mean_jitter_cycles,
            "biased jitter {} < fixed jitter {}",
            biased.mean_jitter_cycles,
            fixed.mean_jitter_cycles
        );
    }

    #[test]
    fn perfect_switch_is_a_lower_bound() {
        let perfect = quick(small().arbiter(ArbiterKind::Perfect), 0.8);
        let biased = quick(small().arbiter(ArbiterKind::BiasedPriority).candidates(8), 0.8);
        assert!(perfect.mean_delay_cycles <= biased.mean_delay_cycles + 1e-9);
        assert!(perfect.mean_jitter_cycles <= biased.mean_jitter_cycles + 1e-9);
    }

    #[test]
    fn tails_dominate_means() {
        let r = quick(small(), 0.8);
        let delay = r.delay_tail.expect("flits measured");
        assert!(delay.p50 <= delay.p95 && delay.p95 <= delay.p99, "tail must be monotone");
        assert!(
            delay.p99 + 1.0 >= r.mean_delay_cycles,
            "p99 {} can't sit below the mean {}",
            delay.p99,
            r.mean_delay_cycles
        );
        assert!(r.jitter_tail.is_some());
    }

    #[test]
    fn experiment_is_reproducible() {
        let a = quick(small(), 0.6);
        let b = quick(small(), 0.6);
        assert_eq!(a.mean_delay_cycles.to_bits(), b.mean_delay_cycles.to_bits());
        assert_eq!(a.mean_jitter_cycles.to_bits(), b.mean_jitter_cycles.to_bits());
        assert_eq!(a.flits_measured, b.flits_measured);
    }

    #[test]
    fn different_seeds_change_the_mix() {
        let a = Experiment::new(small(), 0.5).windows(1_000, 5_000).seed(1).run();
        let b = Experiment::new(small(), 0.5).windows(1_000, 5_000).seed(2).run();
        assert_ne!(a.connections, b.connections);
    }
}
