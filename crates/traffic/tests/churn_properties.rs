//! Property tests over the churn workload generator: a schedule is a pure
//! function of `(config, seed)`, structurally well-formed (ids dense,
//! departures strictly after arrivals, endpoints distinct and in range,
//! the event tape time-sorted with one arrival and one departure per
//! session), and actually moved by the seed.

use mmr_traffic::churn::{ChurnConfig, ChurnEventKind, ChurnSchedule, DiurnalCurve};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Regenerating from the same seed reproduces the schedule bit for
    /// bit across the whole config space, and every generated schedule is
    /// well-formed.
    #[test]
    fn schedules_are_pure_functions_of_config_and_seed(
        seed in any::<u64>(),
        arrivals_per_kcycle in 1u32..2_000,
        trough in 0.0f64..1.0,
        median in 50.0f64..5_000.0,
        sigma in 0.0f64..1.5,
        endpoints in 2usize..16,
    ) {
        let cfg = ChurnConfig {
            peak_arrival_rate: f64::from(arrivals_per_kcycle) / 1_000.0,
            diurnal: DiurnalCurve::day_night(trough, 4_000.0),
            median_holding: median,
            holding_sigma: sigma,
            rungs: (0, 8),
            best_effort_fraction: 0.25,
            endpoints,
            horizon: 4_000,
        };
        let a = ChurnSchedule::generate(&cfg, seed);
        let b = ChurnSchedule::generate(&cfg, seed);
        prop_assert_eq!(&a, &b, "same seed, same tape");

        for (i, s) in a.sessions.iter().enumerate() {
            prop_assert_eq!(s.id as usize, i, "ids are dense and in arrival order");
            prop_assert!(s.arrives < s.departs, "holding time is strictly positive");
            prop_assert!(s.arrives.0 < cfg.horizon, "arrivals stop at the horizon");
            prop_assert!(s.src != s.dst, "endpoints are distinct");
            prop_assert!(s.src < endpoints && s.dst < endpoints, "endpoints in range");
        }
        for w in a.events.windows(2) {
            prop_assert!(w[0].at <= w[1].at, "the event tape is time-sorted");
        }
        let arrivals =
            a.events.iter().filter(|e| e.kind == ChurnEventKind::Arrival).count();
        let departures =
            a.events.iter().filter(|e| e.kind == ChurnEventKind::Departure).count();
        prop_assert_eq!(arrivals, a.sessions.len(), "one arrival per session");
        prop_assert_eq!(departures, a.sessions.len(), "one departure per session");
    }

    /// A different seed produces a different tape (at a workload of
    /// hundreds of sessions two independent draws never coincide).
    #[test]
    fn the_seed_moves_the_schedule(seed in any::<u64>()) {
        let cfg = ChurnConfig::new(0.2, 8, 4_000);
        let a = ChurnSchedule::generate(&cfg, seed);
        let b = ChurnSchedule::generate(&cfg, seed ^ 0x9E37_79B9_7F4A_7C15);
        prop_assert!(a != b, "independent seeds drew identical tapes");
    }
}
