//! Property tests: `StatusBits` agrees with a naive `Vec<bool>` model.

use mmr_bitvec::StatusBits;
use proptest::prelude::*;

/// Naive reference model.
#[derive(Debug, Clone)]
struct Model(Vec<bool>);

impl Model {
    fn to_bits(&self) -> StatusBits {
        self.0.iter().copied().collect()
    }
}

fn model_strategy(max_len: usize) -> impl Strategy<Value = Model> {
    prop::collection::vec(any::<bool>(), 0..max_len).prop_map(Model)
}

fn pair_strategy(max_len: usize) -> impl Strategy<Value = (Model, Model)> {
    (0..max_len).prop_flat_map(|len| {
        (
            prop::collection::vec(any::<bool>(), len).prop_map(Model),
            prop::collection::vec(any::<bool>(), len).prop_map(Model),
        )
    })
}

proptest! {
    #[test]
    fn count_ones_matches_model(m in model_strategy(300)) {
        let bits = m.to_bits();
        prop_assert_eq!(bits.count_ones(), m.0.iter().filter(|&&b| b).count());
        prop_assert_eq!(bits.any(), m.0.iter().any(|&b| b));
    }

    #[test]
    fn get_matches_model(m in model_strategy(300)) {
        let bits = m.to_bits();
        for (i, &b) in m.0.iter().enumerate() {
            prop_assert_eq!(bits.get(i), b);
        }
    }

    #[test]
    fn iter_set_matches_model(m in model_strategy(300)) {
        let bits = m.to_bits();
        let expected: Vec<usize> =
            m.0.iter().enumerate().filter_map(|(i, &b)| b.then_some(i)).collect();
        prop_assert_eq!(bits.iter_set().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn first_set_matches_model(m in model_strategy(300)) {
        let bits = m.to_bits();
        prop_assert_eq!(bits.first_set(), m.0.iter().position(|&b| b));
    }

    #[test]
    fn and_or_xor_match_model((a, b) in pair_strategy(300)) {
        let (ba, bb) = (a.to_bits(), b.to_bits());
        let and = &ba & &bb;
        let or = &ba | &bb;
        let xor = &ba ^ &bb;
        for i in 0..a.0.len() {
            prop_assert_eq!(and.get(i), a.0[i] && b.0[i]);
            prop_assert_eq!(or.get(i), a.0[i] || b.0[i]);
            prop_assert_eq!(xor.get(i), a.0[i] ^ b.0[i]);
        }
    }

    #[test]
    fn not_is_involution(m in model_strategy(300)) {
        let bits = m.to_bits();
        let double = !&!&bits;
        prop_assert_eq!(double, bits.clone());
        // NOT never sets bits beyond the logical length.
        prop_assert_eq!((!&bits).count_ones(), m.0.len() - bits.count_ones());
    }

    #[test]
    fn next_set_wrapping_finds_nearest(m in model_strategy(200), from in 0usize..400) {
        let bits = m.to_bits();
        let expected = if m.0.iter().any(|&b| b) {
            let len = m.0.len();
            let start = from % len;
            (0..len).map(|k| (start + k) % len).find(|&i| m.0[i])
        } else {
            None
        };
        prop_assert_eq!(bits.next_set_wrapping(from), expected);
    }

    #[test]
    fn set_then_clear_restores(mut positions in prop::collection::vec(0usize..256, 0..40)) {
        let mut bits = StatusBits::zeros(256);
        for &p in &positions {
            bits.set(p, true);
        }
        positions.sort_unstable();
        positions.dedup();
        prop_assert_eq!(bits.iter_set().collect::<Vec<_>>(), positions.clone());
        for &p in &positions {
            bits.set(p, false);
        }
        prop_assert!(!bits.any());
    }
}
