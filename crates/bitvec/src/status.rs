//! The status bit vector itself.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, Not};

const WORD_BITS: usize = 64;

/// Words stored inline before spilling to the heap. Four words cover 256
/// bits — exactly the paper's 256 virtual channels per port — so every
/// status vector in the paper configuration lives inside its owner with no
/// pointer chase. The link scheduler touches ~a dozen of these per port
/// per cycle; keeping them inline is what makes the word-parallel ops
/// genuinely word-parallel instead of cache-miss-parallel.
const INLINE_WORDS: usize = 4;

/// A fixed-length bit vector modelling one hardware status vector
/// (§4.1 of the MMR paper): one bit per virtual channel, wide logical
/// operations, and constant-time priority encoding.
///
/// Vectors of up to [`INLINE_WORDS`] × 64 bits are stored inline (no heap
/// allocation); longer vectors spill to a `Vec`. The representation is
/// invisible to callers — equality, hashing, and every operation are
/// defined over the logical bits only.
///
/// # Example
///
/// ```
/// use mmr_bitvec::StatusBits;
///
/// let mut flits_available = StatusBits::zeros(256);
/// let mut credits_available = StatusBits::zeros(256);
/// flits_available.set(3, true);
/// flits_available.set(200, true);
/// credits_available.set(200, true);
///
/// // "the virtual channels with flits_available and credits_available, by
/// //  performing the logical AND of the corresponding bit vectors"
/// let ready = &flits_available & &credits_available;
/// assert_eq!(ready.first_set(), Some(200));
/// ```
#[derive(Clone)]
pub struct StatusBits {
    len: usize,
    words: Words,
}

#[derive(Clone)]
enum Words {
    Inline([u64; INLINE_WORDS]),
    Heap(Vec<u64>),
}

impl StatusBits {
    fn with_word_fill(len: usize, fill: u64) -> Self {
        let n = len.div_ceil(WORD_BITS);
        let words = if n <= INLINE_WORDS {
            Words::Inline([fill; INLINE_WORDS])
        } else {
            Words::Heap(vec![fill; n])
        };
        StatusBits { len, words }
    }

    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        StatusBits::with_word_fill(len, 0)
    }

    /// Creates an all-one vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = StatusBits::with_word_fill(len, u64::MAX);
        v.mask_tail();
        v
    }

    /// Creates a vector from an iterator of set-bit positions.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    pub fn from_set_bits(len: usize, bits: impl IntoIterator<Item = usize>) -> Self {
        let mut v = StatusBits::zeros(len);
        for b in bits {
            v.set(b, true);
        }
        v
    }

    /// The backing words holding the vector's `len` bits. For inline
    /// storage the slice is trimmed to the logical word count so that
    /// word-wise loops, comparisons, and hashes never observe the unused
    /// inline capacity.
    #[inline]
    fn words(&self) -> &[u64] {
        match &self.words {
            // mmr-lint: allow(P-TRANS, reason="word count is derived from self.len; the inline buffer is sized for the type's maximum length by construction")
            Words::Inline(buf) => &buf[..self.len.div_ceil(WORD_BITS)],
            Words::Heap(v) => v,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        let n = self.len.div_ceil(WORD_BITS);
        match &mut self.words {
            // mmr-lint: allow(P-TRANS, reason="word count is derived from self.len; the inline buffer is sized for the type's maximum length by construction")
            Words::Inline(buf) => &mut buf[..n],
            Words::Heap(v) => v,
        }
    }

    fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words_mut().last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Heap bytes owned by the vector: zero while the words fit the inline
    /// buffer, the word buffer's capacity otherwise. Memory accounting for
    /// the scale benchmarks.
    pub fn heap_bytes(&self) -> usize {
        match &self.words {
            Words::Inline(_) => 0,
            Words::Heap(v) => v.capacity() * std::mem::size_of::<u64>(),
        }
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        // mmr-lint: allow(P-TRANS, reason="bit-index bounds assert is the StatusBits API contract; callers index within construction-sized maps")
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words()[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1 // mmr-lint: allow(P-TRANS, reason="i < len was just asserted; the word index cannot exceed the storage")
    }

    /// Writes bit `i`. This is the per-VC status update the paper describes
    /// ("a bit ... is updated every time the status of a virtual channel
    /// changes").
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        // mmr-lint: allow(P-TRANS, reason="bit-index bounds assert is the StatusBits API contract; callers index within construction-sized maps")
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words_mut()[i / WORD_BITS] |= mask; // mmr-lint: allow(P-TRANS, reason="i < len was just asserted; the word index cannot exceed the storage")
        } else {
            self.words_mut()[i / WORD_BITS] &= !mask; // mmr-lint: allow(P-TRANS, reason="i < len was just asserted; the word index cannot exceed the storage")
        }
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words_mut().fill(0);
    }

    /// Sets every bit (all-ones over the vector's length).
    pub fn set_all(&mut self) {
        self.words_mut().fill(u64::MAX);
        self.mask_tail();
    }

    /// Copies another vector of the same length into this one without
    /// reallocating — the in-place analogue of `clone`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, other: &StatusBits) {
        self.zip_len(other);
        self.words_mut().copy_from_slice(other.words());
    }

    /// Clears every bit that is set in `other` — an in-place AND-NOT, the
    /// word-parallel building block for "members of A not in B" domain
    /// subtraction without allocating an intermediate complement.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn subtract(&mut self, other: &StatusBits) {
        self.zip_len(other);
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= !b;
        }
    }

    /// Whether this vector and `other` share any set bit — a whole-vector
    /// intersection test that inspects one u64 per 64 lanes and never
    /// materialises the intersection.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn intersects(&self, other: &StatusBits) -> bool {
        self.zip_len(other);
        self.words().iter().zip(other.words()).any(|(a, b)| a & b != 0)
    }

    /// Writes `a ∩ b` into `self` and returns its population count — the
    /// fused form of `copy_from` + `&=` + `count_ones`, one pass over the
    /// backing words instead of three. This is the link scheduler's
    /// per-phase domain build, which runs for every service phase of every
    /// port every flit cycle.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn copy_intersection(&mut self, a: &StatusBits, b: &StatusBits) -> usize {
        a.zip_len(b);
        self.zip_len(a);
        let mut count = 0;
        for ((o, x), y) in self.words_mut().iter_mut().zip(a.words()).zip(b.words()) {
            let w = x & y;
            *o = w;
            count += w.count_ones() as usize;
        }
        count
    }

    /// Writes `a ∩ b ∩ c` into `self` and returns its population count —
    /// the paper's three-condition eligibility query (`flits_available ∧
    /// credits_available ∧ connection_active`) as a single fused pass.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn copy_intersection3(&mut self, a: &StatusBits, b: &StatusBits, c: &StatusBits) -> usize {
        a.zip_len(b);
        a.zip_len(c);
        self.zip_len(a);
        let mut count = 0;
        let (aw, bw, cw) = (a.words(), b.words(), c.words());
        for (i, o) in self.words_mut().iter_mut().enumerate() {
            let w = aw[i] & bw[i] & cw[i];
            *o = w;
            count += w.count_ones() as usize;
        }
        count
    }

    /// Writes `(a ∩ b) \ exclude` into `self` and returns its population
    /// count — the quota-enforcing domain build (class members with a
    /// stream head whose round quota is not yet exhausted), fused into one
    /// pass.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn copy_intersection_minus(
        &mut self,
        a: &StatusBits,
        b: &StatusBits,
        exclude: &StatusBits,
    ) -> usize {
        a.zip_len(b);
        a.zip_len(exclude);
        self.zip_len(a);
        let mut count = 0;
        let (aw, bw, ew) = (a.words(), b.words(), exclude.words());
        for (i, o) in self.words_mut().iter_mut().enumerate() {
            // mmr-lint: allow(P-TRANS, reason="the three vectors are zip_len-checked to equal length before the word loop")
            let w = aw[i] & bw[i] & !ew[i];
            *o = w;
            count += w.count_ones() as usize;
        }
        count
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words().iter().any(|&w| w != 0)
    }

    /// Index of the lowest set bit (a hardware priority encoder), if any.
    pub fn first_set(&self) -> Option<usize> {
        for (wi, &w) in self.words().iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Index of the lowest set bit at or after `from`, wrapping around —
    /// a rotating priority encoder, the building block of round-robin
    /// candidate selection.
    pub fn next_set_wrapping(&self, from: usize) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let from = from % self.len;
        let words = self.words();
        // Search [from, len).
        let start_word = from / WORD_BITS;
        let start_bit = from % WORD_BITS;
        // mmr-lint: allow(P-TRANS, reason="start_word is reduced modulo the word count before indexing")
        let masked = words[start_word] & (u64::MAX << start_bit);
        if masked != 0 {
            let idx = start_word * WORD_BITS + masked.trailing_zeros() as usize;
            if idx < self.len {
                return Some(idx);
            }
        }
        for (wi, &word) in words.iter().enumerate().skip(start_word + 1) {
            if word != 0 {
                return Some(wi * WORD_BITS + word.trailing_zeros() as usize);
            }
        }
        // Wrap to [0, from] — first_set covers it (and the empty vector).
        self.first_set()
    }

    /// Drains every set bit into `out` in ascending order and clears the
    /// vector, one word at a time — the batched "which routers need
    /// examination" scan of the event-driven engine. A 64-router quiescence
    /// check costs a single word compare; each set bit is extracted with a
    /// trailing-zeros count and cleared with the `w & (w - 1)` idiom.
    pub fn drain_set_into(&mut self, out: &mut Vec<usize>) {
        for (wi, word) in self.words_mut().iter_mut().enumerate() {
            let mut bits = std::mem::take(word);
            while bits != 0 {
                // mmr-lint: allow(A-TRANS, reason="drains into a caller-owned scratch vector that keeps its capacity across cycles")
                out.push(wi * WORD_BITS + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_set(&self) -> SetBits<'_> {
        let words = self.words();
        SetBits { words, word_idx: 0, current: words.first().copied().unwrap_or(0) }
    }

    fn zip_len(&self, other: &StatusBits) -> usize {
        // mmr-lint: allow(P-TRANS, reason="equal-length precondition assert is the zip API contract, checked before any word access")
        assert_eq!(self.len, other.len, "status vectors must have equal length");
        self.len
    }
}

/// Equality over the logical bits only — hand-written so that an inline
/// and a (hypothetical) heap vector of the same contents compare equal and
/// the unused inline capacity never leaks into the comparison.
impl PartialEq for StatusBits {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.words() == other.words()
    }
}

impl Eq for StatusBits {}

impl Hash for StatusBits {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        self.words().hash(state);
    }
}

impl fmt::Debug for StatusBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StatusBits[{}; set={:?}]", self.len, self.iter_set().collect::<Vec<_>>())
    }
}

/// Iterator over set-bit indices; see [`StatusBits::iter_set`].
#[derive(Debug, Clone)]
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

impl BitAnd for &StatusBits {
    type Output = StatusBits;
    fn bitand(self, rhs: &StatusBits) -> StatusBits {
        let len = self.zip_len(rhs);
        let mut out = StatusBits::zeros(len);
        for ((o, a), b) in out.words_mut().iter_mut().zip(self.words()).zip(rhs.words()) {
            *o = a & b;
        }
        out
    }
}

impl BitOr for &StatusBits {
    type Output = StatusBits;
    fn bitor(self, rhs: &StatusBits) -> StatusBits {
        let len = self.zip_len(rhs);
        let mut out = StatusBits::zeros(len);
        for ((o, a), b) in out.words_mut().iter_mut().zip(self.words()).zip(rhs.words()) {
            *o = a | b;
        }
        out
    }
}

impl BitXor for &StatusBits {
    type Output = StatusBits;
    fn bitxor(self, rhs: &StatusBits) -> StatusBits {
        let len = self.zip_len(rhs);
        let mut out = StatusBits::zeros(len);
        for ((o, a), b) in out.words_mut().iter_mut().zip(self.words()).zip(rhs.words()) {
            *o = a ^ b;
        }
        out
    }
}

impl Not for &StatusBits {
    type Output = StatusBits;
    fn not(self) -> StatusBits {
        let mut out = StatusBits::zeros(self.len);
        for (o, w) in out.words_mut().iter_mut().zip(self.words()) {
            *o = !w;
        }
        out.mask_tail();
        out
    }
}

impl BitAndAssign<&StatusBits> for StatusBits {
    fn bitand_assign(&mut self, rhs: &StatusBits) {
        self.zip_len(rhs);
        for (a, b) in self.words_mut().iter_mut().zip(rhs.words()) {
            *a &= b;
        }
    }
}

impl BitOrAssign<&StatusBits> for StatusBits {
    fn bitor_assign(&mut self, rhs: &StatusBits) {
        self.zip_len(rhs);
        for (a, b) in self.words_mut().iter_mut().zip(rhs.words()) {
            *a |= b;
        }
    }
}

impl FromIterator<bool> for StatusBits {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bools: Vec<bool> = iter.into_iter().collect();
        let mut v = StatusBits::zeros(bools.len());
        for (i, b) in bools.into_iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut v = StatusBits::zeros(130);
        assert!(!v.get(129));
        v.set(129, true);
        v.set(0, true);
        v.set(64, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1));
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn drain_set_into_empties_in_ascending_order() {
        let mut v = StatusBits::from_set_bits(200, [129, 0, 63, 64, 199, 7]);
        let mut out = vec![42usize];
        v.drain_set_into(&mut out);
        assert_eq!(out, vec![42, 0, 7, 63, 64, 129, 199]);
        assert!(!v.any());
        out.clear();
        v.drain_set_into(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        StatusBits::zeros(10).get(10);
    }

    #[test]
    fn ones_masks_tail() {
        let v = StatusBits::ones(70);
        assert_eq!(v.count_ones(), 70);
        assert!(v.get(69));
    }

    #[test]
    fn not_respects_length() {
        let v = StatusBits::zeros(70);
        let inv = !&v;
        assert_eq!(inv.count_ones(), 70);
        let back = !&inv;
        assert_eq!(back.count_ones(), 0);
    }

    #[test]
    fn and_or_xor() {
        let a = StatusBits::from_set_bits(128, [1, 5, 64, 100]);
        let b = StatusBits::from_set_bits(128, [5, 64, 101]);
        assert_eq!((&a & &b).iter_set().collect::<Vec<_>>(), vec![5, 64]);
        assert_eq!((&a | &b).count_ones(), 5);
        assert_eq!((&a ^ &b).iter_set().collect::<Vec<_>>(), vec![1, 100, 101]);
    }

    #[test]
    fn subtract_is_and_not() {
        let mut a = StatusBits::from_set_bits(130, [0, 5, 64, 100, 129]);
        let b = StatusBits::from_set_bits(130, [5, 100, 128]);
        a.subtract(&b);
        assert_eq!(a.iter_set().collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn intersects_without_materialising() {
        let a = StatusBits::from_set_bits(130, [3, 129]);
        let b = StatusBits::from_set_bits(130, [129]);
        let c = StatusBits::from_set_bits(130, [4, 64]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!StatusBits::zeros(130).intersects(&a));
    }

    #[test]
    fn assign_ops() {
        let mut a = StatusBits::from_set_bits(64, [1, 2, 3]);
        let b = StatusBits::from_set_bits(64, [2, 3, 4]);
        a &= &b;
        assert_eq!(a.iter_set().collect::<Vec<_>>(), vec![2, 3]);
        a |= &b;
        assert_eq!(a.iter_set().collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = &StatusBits::zeros(64) & &StatusBits::zeros(65);
    }

    #[test]
    fn set_all_and_copy_from() {
        let mut v = StatusBits::zeros(70);
        v.set_all();
        assert_eq!(v.count_ones(), 70);
        let src = StatusBits::from_set_bits(70, [0, 69]);
        v.copy_from(&src);
        assert_eq!(v.iter_set().collect::<Vec<_>>(), vec![0, 69]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn copy_from_mismatched_lengths_panics() {
        StatusBits::zeros(64).copy_from(&StatusBits::zeros(65));
    }

    #[test]
    fn first_set_priority_encodes() {
        assert_eq!(StatusBits::zeros(256).first_set(), None);
        assert_eq!(StatusBits::from_set_bits(256, [200, 3]).first_set(), Some(3));
        assert_eq!(StatusBits::from_set_bits(256, [200]).first_set(), Some(200));
    }

    #[test]
    fn next_set_wrapping_walks_ring() {
        let v = StatusBits::from_set_bits(256, [10, 100, 250]);
        assert_eq!(v.next_set_wrapping(0), Some(10));
        assert_eq!(v.next_set_wrapping(10), Some(10));
        assert_eq!(v.next_set_wrapping(11), Some(100));
        assert_eq!(v.next_set_wrapping(101), Some(250));
        assert_eq!(v.next_set_wrapping(251), Some(10)); // wraps
        assert_eq!(StatusBits::zeros(8).next_set_wrapping(3), None);
    }

    #[test]
    fn next_set_wrapping_from_beyond_len_wraps_modulo() {
        let v = StatusBits::from_set_bits(8, [2]);
        assert_eq!(v.next_set_wrapping(9), Some(2)); // 9 % 8 == 1 -> finds 2
    }

    #[test]
    fn iter_set_matches_gets() {
        let positions = [0, 1, 63, 64, 65, 127, 128, 255];
        let v = StatusBits::from_set_bits(256, positions);
        assert_eq!(v.iter_set().collect::<Vec<_>>(), positions.to_vec());
    }

    #[test]
    fn from_iterator_of_bools() {
        let v: StatusBits = [true, false, true, true].into_iter().collect();
        assert_eq!(v.len(), 4);
        assert_eq!(v.iter_set().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn empty_vector_is_benign() {
        let v = StatusBits::zeros(0);
        assert!(v.is_empty());
        assert!(!v.any());
        assert_eq!(v.first_set(), None);
        assert_eq!(v.next_set_wrapping(0), None);
        assert_eq!(v.iter_set().count(), 0);
    }

    #[test]
    fn debug_is_nonempty() {
        let v = StatusBits::from_set_bits(8, [1]);
        assert!(!format!("{v:?}").is_empty());
    }

    #[test]
    fn fused_intersections_match_composed_ops() {
        let a = StatusBits::from_set_bits(200, [1, 5, 64, 100, 130, 199]);
        let b = StatusBits::from_set_bits(200, [5, 64, 100, 131, 199]);
        let c = StatusBits::from_set_bits(200, [5, 100, 199]);
        let mut out = StatusBits::zeros(200);

        assert_eq!(out.copy_intersection(&a, &b), 4);
        assert_eq!(out, &a & &b);

        assert_eq!(out.copy_intersection3(&a, &b, &c), 3);
        assert_eq!(out, &(&a & &b) & &c);

        assert_eq!(out.copy_intersection_minus(&a, &b, &c), 1);
        let mut expect = &a & &b;
        expect.subtract(&c);
        assert_eq!(out, expect);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn fused_intersection_mismatched_lengths_panics() {
        StatusBits::zeros(64).copy_intersection(&StatusBits::zeros(64), &StatusBits::zeros(128));
    }

    #[test]
    fn inline_and_heap_sizes_behave_identically() {
        // 256 bits sits inline; 320 bits spills to the heap. The
        // representation must be invisible: same ops, same results.
        for len in [256usize, 320] {
            let mut v = StatusBits::zeros(len);
            v.set(len - 1, true);
            v.set(0, true);
            assert_eq!(v.count_ones(), 2);
            assert_eq!(v.iter_set().collect::<Vec<_>>(), vec![0, len - 1]);
            assert_eq!(v, StatusBits::from_set_bits(len, [0, len - 1]));
            let inv = !&v;
            assert_eq!(inv.count_ones(), len - 2);
            let mut all = StatusBits::ones(len);
            assert_eq!(all.count_ones(), len);
            all.subtract(&v);
            assert_eq!(all.count_ones(), len - 2);
            assert_eq!(all, inv);
        }
    }
}
