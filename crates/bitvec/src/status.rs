//! The status bit vector itself.

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, Not};

const WORD_BITS: usize = 64;

/// A fixed-length bit vector modelling one hardware status vector
/// (§4.1 of the MMR paper): one bit per virtual channel, wide logical
/// operations, and constant-time priority encoding.
///
/// # Example
///
/// ```
/// use mmr_bitvec::StatusBits;
///
/// let mut flits_available = StatusBits::zeros(256);
/// let mut credits_available = StatusBits::zeros(256);
/// flits_available.set(3, true);
/// flits_available.set(200, true);
/// credits_available.set(200, true);
///
/// // "the virtual channels with flits_available and credits_available, by
/// //  performing the logical AND of the corresponding bit vectors"
/// let ready = &flits_available & &credits_available;
/// assert_eq!(ready.first_set(), Some(200));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct StatusBits {
    len: usize,
    words: Vec<u64>,
}

impl StatusBits {
    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        StatusBits { len, words: vec![0; len.div_ceil(WORD_BITS)] }
    }

    /// Creates an all-one vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = StatusBits { len, words: vec![u64::MAX; len.div_ceil(WORD_BITS)] };
        v.mask_tail();
        v
    }

    /// Creates a vector from an iterator of set-bit positions.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    pub fn from_set_bits(len: usize, bits: impl IntoIterator<Item = usize>) -> Self {
        let mut v = StatusBits::zeros(len);
        for b in bits {
            v.set(b, true);
        }
        v
    }

    fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Writes bit `i`. This is the per-VC status update the paper describes
    /// ("a bit ... is updated every time the status of a virtual channel
    /// changes").
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Sets every bit (all-ones over the vector's length).
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        self.mask_tail();
    }

    /// Copies another vector of the same length into this one without
    /// reallocating — the in-place analogue of `clone`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, other: &StatusBits) {
        self.zip_len(other);
        self.words.copy_from_slice(&other.words);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Index of the lowest set bit (a hardware priority encoder), if any.
    pub fn first_set(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Index of the lowest set bit at or after `from`, wrapping around —
    /// a rotating priority encoder, the building block of round-robin
    /// candidate selection.
    pub fn next_set_wrapping(&self, from: usize) -> Option<usize> {
        if self.len == 0 || !self.any() {
            return None;
        }
        let from = from % self.len;
        // Search [from, len).
        let start_word = from / WORD_BITS;
        let start_bit = from % WORD_BITS;
        let masked = self.words[start_word] & (u64::MAX << start_bit);
        if masked != 0 {
            let idx = start_word * WORD_BITS + masked.trailing_zeros() as usize;
            if idx < self.len {
                return Some(idx);
            }
        }
        for wi in start_word + 1..self.words.len() {
            if self.words[wi] != 0 {
                return Some(wi * WORD_BITS + self.words[wi].trailing_zeros() as usize);
            }
        }
        // Wrap to [0, from).
        self.first_set()
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_set(&self) -> SetBits<'_> {
        SetBits { bits: self, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    fn zip_len(&self, other: &StatusBits) -> usize {
        assert_eq!(self.len, other.len, "status vectors must have equal length");
        self.len
    }
}

impl fmt::Debug for StatusBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StatusBits[{}; set={:?}]", self.len, self.iter_set().collect::<Vec<_>>())
    }
}

/// Iterator over set-bit indices; see [`StatusBits::iter_set`].
#[derive(Debug, Clone)]
pub struct SetBits<'a> {
    bits: &'a StatusBits,
    word_idx: usize,
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bits.words.len() {
                return None;
            }
            self.current = self.bits.words[self.word_idx];
        }
    }
}

impl BitAnd for &StatusBits {
    type Output = StatusBits;
    fn bitand(self, rhs: &StatusBits) -> StatusBits {
        let len = self.zip_len(rhs);
        StatusBits {
            len,
            words: self.words.iter().zip(&rhs.words).map(|(a, b)| a & b).collect(),
        }
    }
}

impl BitOr for &StatusBits {
    type Output = StatusBits;
    fn bitor(self, rhs: &StatusBits) -> StatusBits {
        let len = self.zip_len(rhs);
        StatusBits { len, words: self.words.iter().zip(&rhs.words).map(|(a, b)| a | b).collect() }
    }
}

impl BitXor for &StatusBits {
    type Output = StatusBits;
    fn bitxor(self, rhs: &StatusBits) -> StatusBits {
        let len = self.zip_len(rhs);
        StatusBits { len, words: self.words.iter().zip(&rhs.words).map(|(a, b)| a ^ b).collect() }
    }
}

impl Not for &StatusBits {
    type Output = StatusBits;
    fn not(self) -> StatusBits {
        let mut out =
            StatusBits { len: self.len, words: self.words.iter().map(|w| !w).collect() };
        out.mask_tail();
        out
    }
}

impl BitAndAssign<&StatusBits> for StatusBits {
    fn bitand_assign(&mut self, rhs: &StatusBits) {
        self.zip_len(rhs);
        for (a, b) in self.words.iter_mut().zip(&rhs.words) {
            *a &= b;
        }
    }
}

impl BitOrAssign<&StatusBits> for StatusBits {
    fn bitor_assign(&mut self, rhs: &StatusBits) {
        self.zip_len(rhs);
        for (a, b) in self.words.iter_mut().zip(&rhs.words) {
            *a |= b;
        }
    }
}

impl FromIterator<bool> for StatusBits {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bools: Vec<bool> = iter.into_iter().collect();
        let mut v = StatusBits::zeros(bools.len());
        for (i, b) in bools.into_iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut v = StatusBits::zeros(130);
        assert!(!v.get(129));
        v.set(129, true);
        v.set(0, true);
        v.set(64, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1));
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        StatusBits::zeros(10).get(10);
    }

    #[test]
    fn ones_masks_tail() {
        let v = StatusBits::ones(70);
        assert_eq!(v.count_ones(), 70);
        assert!(v.get(69));
    }

    #[test]
    fn not_respects_length() {
        let v = StatusBits::zeros(70);
        let inv = !&v;
        assert_eq!(inv.count_ones(), 70);
        let back = !&inv;
        assert_eq!(back.count_ones(), 0);
    }

    #[test]
    fn and_or_xor() {
        let a = StatusBits::from_set_bits(128, [1, 5, 64, 100]);
        let b = StatusBits::from_set_bits(128, [5, 64, 101]);
        assert_eq!((&a & &b).iter_set().collect::<Vec<_>>(), vec![5, 64]);
        assert_eq!((&a | &b).count_ones(), 5);
        assert_eq!((&a ^ &b).iter_set().collect::<Vec<_>>(), vec![1, 100, 101]);
    }

    #[test]
    fn assign_ops() {
        let mut a = StatusBits::from_set_bits(64, [1, 2, 3]);
        let b = StatusBits::from_set_bits(64, [2, 3, 4]);
        a &= &b;
        assert_eq!(a.iter_set().collect::<Vec<_>>(), vec![2, 3]);
        a |= &b;
        assert_eq!(a.iter_set().collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = &StatusBits::zeros(64) & &StatusBits::zeros(65);
    }

    #[test]
    fn set_all_and_copy_from() {
        let mut v = StatusBits::zeros(70);
        v.set_all();
        assert_eq!(v.count_ones(), 70);
        let src = StatusBits::from_set_bits(70, [0, 69]);
        v.copy_from(&src);
        assert_eq!(v.iter_set().collect::<Vec<_>>(), vec![0, 69]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn copy_from_mismatched_lengths_panics() {
        StatusBits::zeros(64).copy_from(&StatusBits::zeros(65));
    }

    #[test]
    fn first_set_priority_encodes() {
        assert_eq!(StatusBits::zeros(256).first_set(), None);
        assert_eq!(StatusBits::from_set_bits(256, [200, 3]).first_set(), Some(3));
        assert_eq!(StatusBits::from_set_bits(256, [200]).first_set(), Some(200));
    }

    #[test]
    fn next_set_wrapping_walks_ring() {
        let v = StatusBits::from_set_bits(256, [10, 100, 250]);
        assert_eq!(v.next_set_wrapping(0), Some(10));
        assert_eq!(v.next_set_wrapping(10), Some(10));
        assert_eq!(v.next_set_wrapping(11), Some(100));
        assert_eq!(v.next_set_wrapping(101), Some(250));
        assert_eq!(v.next_set_wrapping(251), Some(10)); // wraps
        assert_eq!(StatusBits::zeros(8).next_set_wrapping(3), None);
    }

    #[test]
    fn next_set_wrapping_from_beyond_len_wraps_modulo() {
        let v = StatusBits::from_set_bits(8, [2]);
        assert_eq!(v.next_set_wrapping(9), Some(2)); // 9 % 8 == 1 -> finds 2
    }

    #[test]
    fn iter_set_matches_gets() {
        let positions = [0, 1, 63, 64, 65, 127, 128, 255];
        let v = StatusBits::from_set_bits(256, positions);
        assert_eq!(v.iter_set().collect::<Vec<_>>(), positions.to_vec());
    }

    #[test]
    fn from_iterator_of_bools() {
        let v: StatusBits = [true, false, true, true].into_iter().collect();
        assert_eq!(v.len(), 4);
        assert_eq!(v.iter_set().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn empty_vector_is_benign() {
        let v = StatusBits::zeros(0);
        assert!(v.is_empty());
        assert!(!v.any());
        assert_eq!(v.first_set(), None);
        assert_eq!(v.next_set_wrapping(0), None);
        assert_eq!(v.iter_set().count(), 0);
    }

    #[test]
    fn debug_is_nonempty() {
        let v = StatusBits::from_set_bits(8, [1]);
        assert!(!format!("{v:?}").is_empty());
    }
}
