//! Hardware-style status bit vectors for the MMR schedulers.
//!
//! §4.1 of the MMR paper (Duato et al., HPCA 1999) describes the router's
//! scheduling state as "a set of status bit vectors, where each bit in a
//! vector is associated with a single virtual channel", combined with wide
//! logical operations so that candidate selection is a constant-time
//! "hardware" operation: *"we can quickly determine the virtual channels
//! with flits_available and credits_available, by performing the logical AND
//! of the corresponding bit vectors."*
//!
//! This crate models exactly that:
//!
//! * [`StatusBits`] — one vector: get/set per VC, wide AND/OR/XOR/NOT,
//!   priority encoding ([`StatusBits::first_set`]) and rotating priority
//!   encoding ([`StatusBits::next_set_wrapping`]).
//! * [`StatusMatrix`] — the named per-condition banks
//!   (`flits_available`, `credits_available`, `CBR_service_requested`, …)
//!   with the combined queries the link scheduler issues.
//!
//! # Example
//!
//! ```
//! use mmr_bitvec::{Condition, StatusMatrix};
//!
//! let mut status = StatusMatrix::new(256); // 256 VCs per input port
//! status.set(Condition::FlitsAvailable, 42, true);
//! status.set(Condition::CreditsAvailable, 42, true);
//!
//! let candidates = status.all_of(&[
//!     Condition::FlitsAvailable,
//!     Condition::CreditsAvailable,
//! ]);
//! assert_eq!(candidates.first_set(), Some(42));
//! ```

pub mod matrix;
pub mod status;

pub use matrix::{Condition, StatusMatrix};
pub use status::{SetBits, StatusBits};
