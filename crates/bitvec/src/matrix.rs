//! Named banks of status vectors, one bank per condition.
//!
//! §4.1 of the paper: "The data structures used for supporting fast
//! scheduling decisions are a set of status bit vectors ... Examples of
//! status bit vectors include: flits_available, input_buffer_full,
//! CBR_service_requested, CBR_bandwidth_serviced, VBR_bandwidth_serviced".

use crate::status::StatusBits;

/// The per-virtual-channel conditions the MMR schedulers track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Condition {
    /// The VC has at least one flit buffered and ready to transmit.
    FlitsAvailable,
    /// The VC's input buffer is full (flow control must stall the upstream).
    InputBufferFull,
    /// The downstream router has buffer credit for this VC.
    CreditsAvailable,
    /// A CBR connection on this VC still has unserved cycles this round.
    CbrServiceRequested,
    /// The CBR allocation of this VC has been fully serviced this round.
    CbrBandwidthServiced,
    /// The VBR *permanent* allocation of this VC has been serviced this round.
    VbrBandwidthServiced,
    /// The VC carries an established connection (vs. free).
    ConnectionActive,
}

impl Condition {
    /// All conditions, in storage order.
    pub const ALL: [Condition; 7] = [
        Condition::FlitsAvailable,
        Condition::InputBufferFull,
        Condition::CreditsAvailable,
        Condition::CbrServiceRequested,
        Condition::CbrBandwidthServiced,
        Condition::VbrBandwidthServiced,
        Condition::ConnectionActive,
    ];

    fn index(self) -> usize {
        match self {
            Condition::FlitsAvailable => 0,
            Condition::InputBufferFull => 1,
            Condition::CreditsAvailable => 2,
            Condition::CbrServiceRequested => 3,
            Condition::CbrBandwidthServiced => 4,
            Condition::VbrBandwidthServiced => 5,
            Condition::ConnectionActive => 6,
        }
    }
}

/// One status vector per [`Condition`], all over the same set of virtual
/// channels (one input port's worth in the MMR).
///
/// # Example
///
/// ```
/// use mmr_bitvec::{Condition, StatusMatrix};
///
/// let mut m = StatusMatrix::new(256);
/// m.set(Condition::FlitsAvailable, 7, true);
/// m.set(Condition::CreditsAvailable, 7, true);
/// m.set(Condition::FlitsAvailable, 9, true); // no credits for 9
///
/// let ready = m.all_of(&[Condition::FlitsAvailable, Condition::CreditsAvailable]);
/// assert_eq!(ready.iter_set().collect::<Vec<_>>(), vec![7]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusMatrix {
    vcs: usize,
    banks: Vec<StatusBits>,
}

impl StatusMatrix {
    /// Creates a matrix tracking `vcs` virtual channels, all conditions
    /// false.
    pub fn new(vcs: usize) -> Self {
        StatusMatrix { vcs, banks: (0..Condition::ALL.len()).map(|_| StatusBits::zeros(vcs)).collect() }
    }

    /// Number of virtual channels tracked.
    pub fn vcs(&self) -> usize {
        self.vcs
    }

    /// Heap bytes owned by the matrix's condition banks.
    pub fn heap_bytes(&self) -> usize {
        self.banks.capacity() * std::mem::size_of::<StatusBits>()
            + self.banks.iter().map(StatusBits::heap_bytes).sum::<usize>()
    }

    /// Reads one condition bit of one VC.
    pub fn get(&self, cond: Condition, vc: usize) -> bool {
        self.banks[cond.index()].get(vc)
    }

    /// Writes one condition bit of one VC.
    pub fn set(&mut self, cond: Condition, vc: usize, value: bool) {
        self.banks[cond.index()].set(vc, value);
    }

    /// Borrows the full vector of a condition.
    pub fn bank(&self, cond: Condition) -> &StatusBits {
        &self.banks[cond.index()]
    }

    /// Clears one condition across all VCs (used at round boundaries for the
    /// `*_bandwidth_serviced` vectors).
    pub fn clear_condition(&mut self, cond: Condition) {
        self.banks[cond.index()].clear();
    }

    /// VCs satisfying *all* of `conds` (wide AND). With an empty list this
    /// is all-ones, the AND identity.
    pub fn all_of(&self, conds: &[Condition]) -> StatusBits {
        let mut acc = StatusBits::ones(self.vcs);
        for &c in conds {
            acc &= self.bank(c);
        }
        acc
    }

    /// In-place variant of [`StatusMatrix::all_of`]: writes the wide AND
    /// into `out` without allocating, so per-cycle schedulers can reuse one
    /// scratch vector.
    ///
    /// # Panics
    ///
    /// Panics if `out` does not have `vcs` bits.
    pub fn all_of_into(&self, conds: &[Condition], out: &mut StatusBits) {
        match conds.split_first() {
            None => out.set_all(),
            Some((&first, rest)) => {
                out.copy_from(self.bank(first));
                for &c in rest {
                    *out &= self.bank(c);
                }
            }
        }
    }

    /// Fused [`StatusMatrix::all_of_into`] that also returns the population
    /// count of the result, computed in the same pass over the backing
    /// words. The three-condition shape — the paper's eligibility query —
    /// runs as a single fused loop; other arities fall back to the composed
    /// ops.
    ///
    /// # Panics
    ///
    /// Panics if `out` does not have `vcs` bits.
    pub fn all_of_count_into(&self, conds: &[Condition], out: &mut StatusBits) -> usize {
        if let [a, b, c] = *conds {
            return out.copy_intersection3(self.bank(a), self.bank(b), self.bank(c));
        }
        self.all_of_into(conds, out);
        out.count_ones()
    }

    /// VCs satisfying *any* of `conds` (wide OR).
    pub fn any_of(&self, conds: &[Condition]) -> StatusBits {
        let mut acc = StatusBits::zeros(self.vcs);
        for &c in conds {
            acc |= self.bank(c);
        }
        acc
    }

    /// Whether any VC has `cond` set — batched quiescence detection: one u64
    /// comparison per 64 VCs answers "do any of these lanes have work?"
    /// without visiting per-VC state.
    pub fn any_set(&self, cond: Condition) -> bool {
        self.bank(cond).any()
    }

    /// VCs satisfying all of `require` and none of `exclude` — the paper's
    /// example query "flits_available, credits_available for flit
    /// transmission, CBR_service_requested and *not* CBR_Completely_Serviced".
    pub fn matching(&self, require: &[Condition], exclude: &[Condition]) -> StatusBits {
        let mut acc = self.all_of(require);
        for &c in exclude {
            acc &= &!self.bank(c);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditions_have_distinct_slots() {
        let mut m = StatusMatrix::new(16);
        for (i, c) in Condition::ALL.into_iter().enumerate() {
            m.set(c, i, true);
        }
        for (i, c) in Condition::ALL.into_iter().enumerate() {
            assert!(m.get(c, i));
            assert_eq!(m.bank(c).count_ones(), 1, "{c:?}");
        }
    }

    #[test]
    fn all_of_is_intersection() {
        let mut m = StatusMatrix::new(8);
        m.set(Condition::FlitsAvailable, 1, true);
        m.set(Condition::FlitsAvailable, 2, true);
        m.set(Condition::CreditsAvailable, 2, true);
        m.set(Condition::CreditsAvailable, 3, true);
        let both = m.all_of(&[Condition::FlitsAvailable, Condition::CreditsAvailable]);
        assert_eq!(both.iter_set().collect::<Vec<_>>(), vec![2]);
        // Empty condition list is the AND identity: everything matches.
        assert_eq!(m.all_of(&[]).count_ones(), 8);
    }

    #[test]
    fn all_of_into_matches_all_of() {
        let mut m = StatusMatrix::new(70);
        m.set(Condition::FlitsAvailable, 1, true);
        m.set(Condition::FlitsAvailable, 69, true);
        m.set(Condition::CreditsAvailable, 69, true);
        let conds = [Condition::FlitsAvailable, Condition::CreditsAvailable];
        let mut out = StatusBits::zeros(70);
        m.all_of_into(&conds, &mut out);
        assert_eq!(out, m.all_of(&conds));
        m.all_of_into(&[], &mut out);
        assert_eq!(out.count_ones(), 70, "empty condition list is the AND identity");
    }

    #[test]
    fn all_of_count_into_matches_all_of() {
        let mut m = StatusMatrix::new(70);
        m.set(Condition::FlitsAvailable, 1, true);
        m.set(Condition::FlitsAvailable, 69, true);
        m.set(Condition::CreditsAvailable, 69, true);
        m.set(Condition::ConnectionActive, 69, true);
        // The fused three-condition shape.
        let conds = [
            Condition::FlitsAvailable,
            Condition::CreditsAvailable,
            Condition::ConnectionActive,
        ];
        let mut out = StatusBits::zeros(70);
        assert_eq!(m.all_of_count_into(&conds, &mut out), 1);
        assert_eq!(out, m.all_of(&conds));
        // The fallback arities.
        assert_eq!(m.all_of_count_into(&conds[..2], &mut out), 1);
        assert_eq!(out, m.all_of(&conds[..2]));
        assert_eq!(m.all_of_count_into(&[], &mut out), 70);
    }

    #[test]
    fn any_of_is_union() {
        let mut m = StatusMatrix::new(8);
        m.set(Condition::CbrServiceRequested, 0, true);
        m.set(Condition::VbrBandwidthServiced, 5, true);
        let either = m.any_of(&[Condition::CbrServiceRequested, Condition::VbrBandwidthServiced]);
        assert_eq!(either.iter_set().collect::<Vec<_>>(), vec![0, 5]);
        assert_eq!(m.any_of(&[]).count_ones(), 0);
    }

    #[test]
    fn matching_excludes() {
        // The paper's candidate query for CBR service.
        let mut m = StatusMatrix::new(8);
        for vc in [1, 2, 3] {
            m.set(Condition::FlitsAvailable, vc, true);
            m.set(Condition::CreditsAvailable, vc, true);
            m.set(Condition::CbrServiceRequested, vc, true);
        }
        m.set(Condition::CbrBandwidthServiced, 2, true);
        let c = m.matching(
            &[
                Condition::FlitsAvailable,
                Condition::CreditsAvailable,
                Condition::CbrServiceRequested,
            ],
            &[Condition::CbrBandwidthServiced],
        );
        assert_eq!(c.iter_set().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn clear_condition_resets_round_state() {
        let mut m = StatusMatrix::new(8);
        m.set(Condition::CbrBandwidthServiced, 4, true);
        m.set(Condition::FlitsAvailable, 4, true);
        m.clear_condition(Condition::CbrBandwidthServiced);
        assert!(!m.get(Condition::CbrBandwidthServiced, 4));
        assert!(m.get(Condition::FlitsAvailable, 4), "other banks untouched");
    }
}
