//! Golden tests: each fixture under `tests/fixtures/` must produce exactly
//! the diagnostics recorded in its `.expected` file, and together the
//! fixtures must exercise every rule the linter knows about.
//!
//! Regenerate an `.expected` file after an intentional rule change with:
//!
//! ```text
//! cargo run -p mmr-lint -- --root crates/lint/tests/fixtures \
//!     --manifest crates/lint/tests/fixtures/lint.toml <fixture>.rs \
//!     > crates/lint/tests/fixtures/<fixture>.expected
//! ```

use std::fs;
use std::path::PathBuf;

use mmr_lint::{check_source, load_manifest, Manifest, ALL_RULES};

const FIXTURES: &[&str] = &[
    "determinism",
    "accounting",
    "panic_free",
    "indexing",
    "hot_alloc",
    "annotations",
];

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_manifest() -> Manifest {
    load_manifest(&fixtures_dir().join("lint.toml")).expect("fixture lint.toml parses")
}

#[test]
fn fixtures_match_golden_output() {
    let dir = fixtures_dir();
    let manifest = fixture_manifest();
    for name in FIXTURES {
        let src = fs::read_to_string(dir.join(format!("{name}.rs"))).expect("fixture readable");
        let expected =
            fs::read_to_string(dir.join(format!("{name}.expected"))).expect("golden readable");
        let got: String = check_source(&format!("{name}.rs"), &src, &manifest)
            .iter()
            .map(|d| format!("{}\n", d.render()))
            .collect();
        assert_eq!(got, expected, "diagnostics drifted for fixture `{name}.rs`");
    }
}

#[test]
fn every_fixture_violates_something() {
    // CI asserts `--deny-all` exits nonzero per fixture; this is the
    // in-process equivalent, so a fixture emptied by accident fails fast.
    let dir = fixtures_dir();
    let manifest = fixture_manifest();
    for name in FIXTURES {
        let src = fs::read_to_string(dir.join(format!("{name}.rs"))).expect("fixture readable");
        let diags = check_source(&format!("{name}.rs"), &src, &manifest);
        assert!(!diags.is_empty(), "fixture `{name}.rs` produced no diagnostics");
    }
}

#[test]
fn every_rule_has_fixture_coverage() {
    // Meta-test: adding a rule without a fixture demonstrating it fails here.
    let dir = fixtures_dir();
    let all_expected: String = FIXTURES
        .iter()
        .map(|name| {
            fs::read_to_string(dir.join(format!("{name}.expected"))).expect("golden readable")
        })
        .collect();
    for rule in ALL_RULES {
        assert!(
            all_expected.contains(&format!(" {}: ", rule.id())),
            "rule {} appears in no fixture's golden output",
            rule.id()
        );
    }
}

#[test]
fn workspace_manifest_designations_resolve() {
    // The real lint.toml must parse, and the paths it designates must exist:
    // a renamed module must not silently fall out of the lint wall.
    let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has a workspace root")
        .to_path_buf();
    let manifest = load_manifest(&repo_root.join("lint.toml")).expect("workspace lint.toml parses");
    for group in [
        &manifest.time_exempt,
        &manifest.accounting,
        &manifest.panic_free,
        &manifest.index_free,
    ] {
        for path in group {
            assert!(
                repo_root.join(path).exists(),
                "lint.toml designates `{path}`, which does not exist"
            );
        }
    }
}
