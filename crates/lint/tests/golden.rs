//! Golden tests: each fixture group under `tests/fixtures/` must produce
//! exactly the diagnostics recorded in its `.expected` file, and together
//! the fixtures must exercise every rule the linter knows about.
//!
//! A group is one or more fixture files analyzed as a single workspace so
//! interprocedural rules (A-TRANS, P-TRANS, S-SHARD chains) can resolve
//! cross-file calls; the golden output lives next to the first file.
//! Regenerate an `.expected` file after an intentional rule change with:
//!
//! ```text
//! cargo run -p mmr-lint -- --root crates/lint/tests/fixtures \
//!     --manifest crates/lint/tests/fixtures/lint.toml <group files...> \
//!     > crates/lint/tests/fixtures/<first file>.expected
//! ```
//! (drop the trailing `mmr-lint: N diagnostic(s)` summary line).

use std::fs;
use std::path::PathBuf;

use mmr_lint::{analyze_sources, load_manifest, Manifest, ALL_RULES};

/// Fixture groups: the files in each inner slice are linted together as one
/// workspace; the `.expected` golden output is named after the first file.
const FIXTURES: &[&[&str]] = &[
    &["determinism"],
    &["accounting"],
    &["panic_free"],
    &["indexing"],
    &["hot_alloc"],
    &["annotations"],
    &["a_trans"],
    &["p_trans", "p_trans_helper"],
    &["d_iter"],
    &["s_shard", "s_shard_helper"],
];

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_manifest() -> Manifest {
    load_manifest(&fixtures_dir().join("lint.toml")).expect("fixture lint.toml parses")
}

fn group_diagnostics(group: &[&str], manifest: &Manifest) -> Vec<String> {
    let dir = fixtures_dir();
    let sources: Vec<(String, String)> = group
        .iter()
        .map(|name| {
            let path = format!("{name}.rs");
            let src = fs::read_to_string(dir.join(&path)).expect("fixture readable");
            (path, src)
        })
        .collect();
    let refs: Vec<(&str, &str)> =
        sources.iter().map(|(p, s)| (p.as_str(), s.as_str())).collect();
    analyze_sources(&refs, manifest).diagnostics.iter().map(|d| d.render()).collect()
}

#[test]
fn fixtures_match_golden_output() {
    let dir = fixtures_dir();
    let manifest = fixture_manifest();
    for group in FIXTURES {
        let expected = fs::read_to_string(dir.join(format!("{}.expected", group[0])))
            .expect("golden readable");
        let got: String =
            group_diagnostics(group, &manifest).iter().map(|d| format!("{d}\n")).collect();
        assert_eq!(got, expected, "diagnostics drifted for fixture group `{}`", group[0]);
    }
}

#[test]
fn every_fixture_group_violates_something() {
    // CI asserts `--deny-all` exits nonzero per fixture group; this is the
    // in-process equivalent, so a group emptied by accident fails fast.
    let manifest = fixture_manifest();
    for group in FIXTURES {
        let diags = group_diagnostics(group, &manifest);
        assert!(!diags.is_empty(), "fixture group `{}` produced no diagnostics", group[0]);
    }
}

#[test]
fn every_rule_has_fixture_coverage() {
    // Meta-test: adding a rule without a fixture demonstrating it fails here.
    let dir = fixtures_dir();
    let all_expected: String = FIXTURES
        .iter()
        .map(|group| {
            fs::read_to_string(dir.join(format!("{}.expected", group[0])))
                .expect("golden readable")
        })
        .collect();
    for rule in ALL_RULES {
        assert!(
            all_expected.contains(&format!(" {}: ", rule.id())),
            "rule {} appears in no fixture's golden output",
            rule.id()
        );
    }
}

#[test]
fn transitive_goldens_record_call_chains() {
    // The interprocedural fixtures must pin the rendered chain, not just the
    // rule firing: a chain-reconstruction regression shows up byte-exactly.
    let dir = fixtures_dir();
    for (name, hops) in [
        ("a_trans", "chain: step -> refill -> grow"),
        ("p_trans", "chain: service -> helper_value"),
        ("s_shard", "chain: lookup -> shard_helper_get"),
    ] {
        let expected =
            fs::read_to_string(dir.join(format!("{name}.expected"))).expect("golden readable");
        assert!(expected.contains(hops), "`{name}.expected` lost its call chain");
    }
}

#[test]
fn workspace_manifest_designations_resolve() {
    // The real lint.toml must parse, and the paths it designates must exist:
    // a renamed module must not silently fall out of the lint wall.
    let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has a workspace root")
        .to_path_buf();
    let manifest = load_manifest(&repo_root.join("lint.toml")).expect("workspace lint.toml parses");
    for group in [
        &manifest.time_exempt,
        &manifest.accounting,
        &manifest.panic_free,
        &manifest.index_free,
        &manifest.iter_strict,
        &manifest.shard_safe,
    ] {
        for path in group {
            assert!(
                repo_root.join(path).exists(),
                "lint.toml designates `{path}`, which does not exist"
            );
        }
    }
}
