//! Fixture: D-HASH, D-TIME, D-RNG violations.
//!
//! Never compiled — linted by `tests/golden.rs` and by the CI fixture loop.

use std::collections::HashMap;
use std::collections::HashSet;

fn tally(events: &[u32]) -> HashMap<u32, u32> {
    let mut seen = HashSet::new();
    let mut counts = HashMap::new();
    for &e in events {
        if seen.insert(e) {
            counts.insert(e, 1);
        }
    }
    counts
}

fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

fn roll() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

fn seeded_ok(point_seed: u64) -> u64 {
    // Deriving from the sweep point's seed is the sanctioned pattern.
    point_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}
