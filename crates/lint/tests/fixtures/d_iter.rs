//! D-ITER fixture: hash-order iteration in an iteration-strict module.
//! Both the method-call form and the for-loop form are nondeterministic;
//! the BTreeMap equivalents below them are not.

use std::collections::BTreeMap;
use std::collections::HashMap;

fn tally() -> u64 {
    let mut counts: HashMap<u32, u64> = HashMap::new();
    counts.insert(1, 10);
    let mut sum = 0;
    for v in counts.values() {
        sum += v;
    }
    for (_k, v) in &counts {
        sum += v;
    }
    sum
}

fn tally_sorted() -> u64 {
    let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
    counts.insert(1, 10);
    let mut sum = 0;
    for v in counts.values() {
        sum += v;
    }
    sum
}
