//! P-TRANS fixture: this module is designated panic-free and contains no
//! panic of its own, but it calls into a helper module (not designated)
//! whose function unwraps. The cross-file chain is the violation.

pub fn service(x: Option<u32>) -> u32 {
    helper_value(x)
}
