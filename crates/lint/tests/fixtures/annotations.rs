//! Fixture: L-REASON and L-UNUSED violations in the annotation grammar.
//!
//! Never compiled — linted by `tests/golden.rs` and by the CI fixture loop.

fn missing_reason(slot: Option<u32>) -> u32 {
    slot.unwrap() // mmr-lint: allow(P-UNWRAP)
}

fn unknown_rule(slot: Option<u32>) -> u32 {
    slot.unwrap() // mmr-lint: allow(P-OOPS, reason="no such rule")
}

fn empty_reason(slot: Option<u32>) -> u32 {
    slot.unwrap() // mmr-lint: allow(P-UNWRAP, reason="")
}

fn stale_allow() -> u32 {
    // mmr-lint: allow(P-EXPECT, reason="the expect below was removed in a refactor")
    41 + 1
}

fn well_formed_ok(slot: Option<u32>) -> u32 {
    slot.unwrap() // mmr-lint: allow(P-UNWRAP, reason="fixture demonstrating a valid escape hatch")
}
