//! Companion for the S-SHARD fixture: not designated shard-safe itself, so
//! its thread-local draws no direct diagnostic — only the chain from
//! s_shard.rs reaches it.

pub fn shard_helper_get() -> u32 {
    thread_local! {
        static SLOT: std::cell::Cell<u32> = std::cell::Cell::new(0);
    }
    SLOT.with(|s| s.get())
}
