//! Fixture: P-INDEX violations in an index-free module.
//!
//! Never compiled — linted by `tests/golden.rs` and by the CI fixture loop.

fn replay_frame(frames: &[u64], cursor: usize) -> u64 {
    frames[cursor]
}

fn replay_frame_ok(frames: &[u64], cursor: usize) -> Option<u64> {
    // get() degrades to None instead of panicking on a stale cursor.
    frames.get(cursor).copied()
}

fn array_literal_ok() -> [u8; 4] {
    // Type and literal brackets are not index expressions.
    [0u8; 4]
}
