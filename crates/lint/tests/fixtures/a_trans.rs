//! A-TRANS fixture: the hot function never allocates directly, but reaches
//! a growing push through two intermediate hops; only the chain diagnostic
//! fires, and it reports the full call chain.

// mmr-lint: hot
fn step(tbl: &mut Vec<u64>) {
    refill(tbl);
}

fn refill(tbl: &mut Vec<u64>) {
    grow(tbl);
}

fn grow(tbl: &mut Vec<u64>) {
    tbl.push(7);
}
