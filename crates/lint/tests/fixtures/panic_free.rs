//! Fixture: P-UNWRAP, P-EXPECT, P-PANIC violations in a panic-free module.
//!
//! Never compiled — linted by `tests/golden.rs` and by the CI fixture loop.

fn deliver(slot: Option<u32>) -> u32 {
    slot.unwrap()
}

fn match_vc(table: &[u32], idx: usize) -> u32 {
    *table.get(idx).expect("scheduler produced an in-range VC")
}

fn route(kind: u8) -> u8 {
    match kind {
        0 => 1,
        1 => 0,
        _ => unreachable!("probe phase only ever emits kinds 0 and 1"),
    }
}

fn check(credits: u32, capacity: u32) {
    assert!(credits <= capacity, "credit overflow");
}

fn degrade_ok(slot: Option<u32>) -> u32 {
    // The sanctioned pattern: count-and-continue, never panic mid-campaign.
    debug_assert!(slot.is_some(), "ghost match");
    slot.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_scaffold_may_unwrap() {
        // unwrap()/expect() inside #[cfg(test)] are not flagged.
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
