//! S-SHARD fixture: this module is designated shard-safe. It holds `Rc`
//! state directly (one diagnostic) and calls into a helper module that
//! touches thread-local state (a chain diagnostic).

struct Cache {
    inner: std::rc::Rc<Vec<u8>>,
}

fn lookup() -> u32 {
    shard_helper_get()
}
