//! Fixture: D-FLOAT violations in an integer-ledger accounting module.
//!
//! Never compiled — linted by `tests/golden.rs` and by the CI fixture loop.

/// Credit ledger that drifts: float arithmetic accumulates rounding error
/// across cycles, so two sweep orders can disagree on the final balance.
struct Ledger {
    balance: f64,
}

impl Ledger {
    fn credit(&mut self, phits: u32) {
        self.balance += phits as f64 * 0.5;
    }

    fn integer_ok(&self, phits: u32) -> u64 {
        // Fixed-point in integer units never drifts.
        u64::from(phits) * 512
    }
}
