//! Fixture: A-ALLOC and A-PUSH violations inside `// mmr-lint: hot` bodies.
//!
//! Never compiled — linted by `tests/golden.rs` and by the CI fixture loop.

struct Scheduler {
    grants: Vec<u32>,
}

impl Scheduler {
    // mmr-lint: hot
    fn select(&mut self, requests: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        for &r in requests {
            out.push(r);
        }
        let label = format!("round {}", requests.len());
        let _ = label;
        self.grants.extend(out.iter().copied());
        requests.to_vec()
    }

    fn cold_setup(&mut self, ports: usize) {
        // Allocation outside hot functions is fine: setup runs once.
        self.grants = Vec::with_capacity(ports);
    }
}
