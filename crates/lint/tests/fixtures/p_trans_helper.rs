//! Companion for the P-TRANS fixture: not designated panic-free itself, so
//! its unwrap draws no direct diagnostic — only the chain from p_trans.rs
//! reaches it.

pub fn helper_value(x: Option<u32>) -> u32 {
    x.unwrap()
}
