//! The workspace call graph and the interprocedural rule families built on
//! it: A-TRANS (hot fn transitively reaches an allocation), P-TRANS
//! (panic-free module transitively reaches a panic site), and the
//! transitive half of S-SHARD (shard-safe module transitively reaches a
//! shard-unsafe construct).
//!
//! Resolution is deliberately an over-approximation (DESIGN.md §7):
//! `Type::method` resolves by `(type, name)`, `self.method` tries the
//! caller's impl type first, and a bare `.method()` resolves by name across
//! **every** first-party impl — no trait dispatch, no receiver type
//! inference. Calls into std or vendored code produce no edges (only
//! first-party definitions are graph nodes), so a chain always ends at
//! first-party source the repo can fix.
//!
//! Traversal never descends into functions that carry the same obligation
//! as the root (another hot fn for A-TRANS, a `[panic_free]` file for
//! P-TRANS, a `[shard_safe]` file for S-SHARD): those functions are
//! analyzed from their own roots, so each finding is reported exactly once,
//! at the outermost call edge that leaves the disciplined region.

use std::collections::BTreeMap;

use crate::diag::{Diagnostic, Rule};
use crate::engine::{is_alloc_type_path, is_index_expr};
use crate::lexer::{Token, TokenKind};
use crate::parse::{Callee, FnItem};

/// Which transitive family a leaf site belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LeafKind {
    /// Allocating / growing call (A-TRANS leaves).
    Alloc,
    /// Panicking construct (P-TRANS leaves).
    Panic,
    /// Shard-unsafe construct (S-SHARD leaves).
    Shard,
}

/// One potential leaf site inside a function body.
#[derive(Debug, Clone)]
pub(crate) struct Site {
    /// 1-based source line of the site.
    pub line: u32,
    /// Which family the site belongs to.
    pub kind: LeafKind,
    /// The direct rule whose `allow(...)` annotation also exempts this
    /// site as a transitive leaf (e.g. an amortized-push `allow(A-PUSH)`).
    pub direct: Rule,
    /// Short description used in chain diagnostics.
    pub desc: String,
}

/// One graph node: a first-party function definition.
#[derive(Debug)]
pub(crate) struct Node {
    /// Index into [`Graph::files`].
    pub file: usize,
    /// Display name (`Type::method` or `fn_name`).
    pub display: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the fn is annotated `// mmr-lint: hot`.
    pub hot: bool,
    /// Leaf sites in the body.
    pub sites: Vec<Site>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub(crate) struct Graph {
    /// Workspace-relative file paths, lexicographically sorted.
    pub files: Vec<String>,
    /// Function nodes in (file, line) order.
    pub nodes: Vec<Node>,
    /// Resolved edges: `edges[n]` lists `(callee, call_line)` pairs, sorted
    /// by callee with the earliest call line kept per callee.
    pub edges: Vec<Vec<(usize, u32)>>,
}

/// Collects leaf sites for each fn of one file. `fns` must come from
/// [`crate::parse::parse_items`] on the same token stream.
pub(crate) fn collect_sites(tokens: &[Token], fns: &[FnItem]) -> Vec<Vec<Site>> {
    let mut sites: Vec<Vec<Site>> = vec![Vec::new(); fns.len()];
    // Innermost enclosing body owns each site (nested fns own theirs).
    let owner_of = |i: usize| -> Option<usize> {
        (0..fns.len())
            .filter(|&k| !fns[k].in_test && fns[k].body.is_some_and(|b| b.contains(i)))
            .max_by_key(|&k| fns[k].start)
    };
    let mut i = 0;
    while i < tokens.len() {
        // Skip attribute bodies: `#[allow(..)]`, `#[derive(..)]`.
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let mut depth = 1u32;
            i += 2;
            while i < tokens.len() && depth > 0 {
                if tokens[i].is_punct('[') {
                    depth += 1;
                } else if tokens[i].is_punct(']') {
                    depth -= 1;
                }
                i += 1;
            }
            continue;
        }
        if let Some(site) = site_at(tokens, i) {
            if let Some(owner) = owner_of(i) {
                sites[owner].push(site);
            }
        }
        i += 1;
    }
    sites
}

/// Recognizes a leaf site whose trigger token sits at `i`.
fn site_at(tokens: &[Token], i: usize) -> Option<Site> {
    let t = &tokens[i];
    let next = tokens.get(i + 1);
    let prev = i.checked_sub(1).and_then(|j| tokens.get(j));
    let site = |kind, direct, desc: String| Some(Site { line: t.line, kind, direct, desc });

    if t.kind == TokenKind::Punct {
        // Bare indexing is a panic site; raw-pointer types are shard sites.
        if t.is_punct('[') && is_index_expr(tokens, i) {
            return site(LeafKind::Panic, Rule::PIndex, "bare indexing".into());
        }
        if t.is_punct('*')
            && next.is_some_and(|n| n.is_ident("const") || n.is_ident("mut"))
            && tokens.get(i + 2).is_some_and(|n| n.kind == TokenKind::Ident)
        {
            return site(LeafKind::Shard, Rule::SShard, "a raw-pointer type".into());
        }
        return None;
    }
    if t.kind != TokenKind::Ident {
        return None;
    }
    let is_call = next.is_some_and(|n| n.is_punct('('));
    let after_dot = prev.is_some_and(|p| p.is_punct('.'));
    let is_macro = next.is_some_and(|n| n.is_punct('!'));
    match t.text.as_str() {
        // --- panic sites -------------------------------------------------
        "unwrap" if after_dot && is_call => {
            site(LeafKind::Panic, Rule::PUnwrap, "`.unwrap()`".into())
        }
        "expect" if after_dot && is_call => {
            site(LeafKind::Panic, Rule::PExpect, "`.expect(..)`".into())
        }
        "panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq"
        | "assert_ne"
            if is_macro && !after_dot =>
        {
            site(LeafKind::Panic, Rule::PPanic, format!("`{}!`", t.text))
        }
        // --- allocation sites --------------------------------------------
        "new" | "from" | "with_capacity" if is_call && is_alloc_type_path(tokens, i) => {
            let ty = tokens[i - 2].text.clone();
            site(LeafKind::Alloc, Rule::AAlloc, format!("allocating `{}::{}(..)`", ty, t.text))
        }
        "to_vec" | "to_string" | "to_owned" | "collect" | "with_capacity"
            if is_call && after_dot =>
        {
            site(LeafKind::Alloc, Rule::AAlloc, format!("allocating `.{}()`", t.text))
        }
        "format" | "vec" if is_macro => {
            site(LeafKind::Alloc, Rule::AAlloc, format!("allocating `{}!`", t.text))
        }
        "push" | "push_back" | "push_front" | "insert" | "extend" | "resize" | "append"
            if is_call && after_dot =>
        {
            site(LeafKind::Alloc, Rule::APush, format!("growing `.{}(..)`", t.text))
        }
        // --- shard-unsafe sites ------------------------------------------
        "Rc" | "RefCell" | "Cell" | "UnsafeCell" => {
            site(LeafKind::Shard, Rule::SShard, format!("shard-unsafe `{}`", t.text))
        }
        "static" if next.is_some_and(|n| n.is_ident("mut")) => {
            site(LeafKind::Shard, Rule::SShard, "shard-unsafe `static mut`".into())
        }
        "thread_local" if is_macro => {
            site(LeafKind::Shard, Rule::SShard, "shard-unsafe `thread_local!`".into())
        }
        _ => None,
    }
}

/// The crate key of a workspace-relative path: its first two path
/// components (`crates/core/src/x.rs` → `crates/core`). Untyped method
/// receivers only resolve by name within the caller's own crate.
fn crate_of(path: &str) -> String {
    path.split('/').take(2).collect::<Vec<_>>().join("/")
}

/// Builds the graph over all files. `per_file` holds, for each file (in
/// sorted path order), its path, parsed fns, and collected sites; `fields`
/// maps `(struct, field)` to the field's type across the whole workspace.
pub(crate) fn build(
    per_file: Vec<(String, Vec<FnItem>, Vec<Vec<Site>>)>,
    fields: &BTreeMap<(String, String), String>,
) -> Graph {
    let mut g = Graph::default();
    // Node table: every non-test fn with a body, plus name → node indices.
    let mut self_tys: Vec<Option<String>> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut crates: Vec<String> = Vec::new();
    let mut vars: Vec<Vec<(String, String)>> = Vec::new();
    let mut calls: Vec<Vec<Callee>> = Vec::new();
    let mut call_lines: Vec<Vec<u32>> = Vec::new();
    for (path, fns, sites) in per_file {
        let file_idx = g.files.len();
        let krate = crate_of(&path);
        g.files.push(path);
        for (f, s) in fns.into_iter().zip(sites) {
            if f.in_test || f.body.is_none() {
                continue;
            }
            g.nodes.push(Node {
                file: file_idx,
                display: f.display(),
                line: f.line,
                hot: f.hot,
                sites: s,
            });
            self_tys.push(f.self_ty.clone());
            names.push(f.name.clone());
            crates.push(krate.clone());
            vars.push(f.vars.clone());
            calls.push(f.calls.iter().map(|c| c.callee.clone()).collect());
            call_lines.push(f.calls.iter().map(|c| c.line).collect());
        }
    }

    // Resolution indices.
    let mut methods_in: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut by_ty: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (idx, name) in names.iter().enumerate() {
        match &self_tys[idx] {
            Some(ty) => {
                methods_in.entry((&crates[idx], name)).or_default().push(idx);
                by_ty.entry((ty, name)).or_default().push(idx);
            }
            None => free.entry(name).or_default().push(idx),
        }
    }

    let empty: Vec<usize> = Vec::new();
    for (caller, callees) in calls.iter().enumerate() {
        // Resolves a typed receiver chain: `segs[0]` is `self` or a named
        // var; later segments walk struct-field types.
        let recv_type = |segs: &[String]| -> Option<String> {
            let mut ty = match segs[0].as_str() {
                "self" => self_tys[caller].clone(),
                base => vars[caller]
                    .iter()
                    .rev()
                    .find(|(v, _)| v == base)
                    .map(|(_, t)| t.clone()),
            };
            for seg in &segs[1..] {
                ty = ty.and_then(|t| fields.get(&(t, seg.clone())).cloned());
            }
            ty
        };
        let mut out: BTreeMap<usize, u32> = BTreeMap::new();
        for (callee, &line) in callees.iter().zip(&call_lines[caller]) {
            let resolved_ty: String;
            let targets: &Vec<usize> = match callee {
                Callee::Free(n) => free.get(n.as_str()).unwrap_or(&empty),
                Callee::Qualified(ty, n) => {
                    let ty = if ty == "Self" {
                        self_tys[caller].as_deref().unwrap_or("Self")
                    } else {
                        ty.as_str()
                    };
                    by_ty.get(&(ty, n.as_str())).unwrap_or(&empty)
                }
                Callee::SelfMethod(n) => {
                    match self_tys[caller].as_deref().and_then(|ty| by_ty.get(&(ty, n.as_str())))
                    {
                        Some(v) => v,
                        None => methods_in
                            .get(&(crates[caller].as_str(), n.as_str()))
                            .unwrap_or(&empty),
                    }
                }
                Callee::PathMethod(segs, n) => match recv_type(segs) {
                    // A resolved receiver type binds the call: a non-
                    // first-party type (Vec, Option…) yields no edge.
                    Some(ty) => {
                        resolved_ty = ty;
                        by_ty.get(&(resolved_ty.as_str(), n.as_str())).unwrap_or(&empty)
                    }
                    None => methods_in
                        .get(&(crates[caller].as_str(), n.as_str()))
                        .unwrap_or(&empty),
                },
                Callee::Method(n) => {
                    methods_in.get(&(crates[caller].as_str(), n.as_str())).unwrap_or(&empty)
                }
            };
            for &t in targets {
                if t != caller {
                    out.entry(t).or_insert(line);
                }
            }
        }
        g.edges.push(out.into_iter().collect());
    }
    g
}

/// Computes the findings of one transitive rule family via BFS from each
/// root. `covered` marks nodes carrying the same obligation as the roots
/// (never descended into); `exempt` consults workspace allow-annotations at
/// a leaf site (and marks them used).
pub(crate) fn transitive_diags(
    graph: &Graph,
    roots: &[usize],
    covered: &dyn Fn(usize) -> bool,
    leaf_kind: LeafKind,
    rule: Rule,
    root_label: &str,
    exempt: &mut dyn FnMut(usize, &Site) -> bool,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for &root in roots {
        // BFS with parent pointers; `from[n] = (parent, edge_line)`.
        let mut from: BTreeMap<usize, (usize, u32)> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        queue.push_back(root);
        while let Some(n) = queue.pop_front() {
            if n != root {
                // Leaf check: any non-exempt site of the family?
                let hit = graph.nodes[n]
                    .sites
                    .iter()
                    .filter(|s| s.kind == leaf_kind)
                    .find(|s| !exempt(n, s));
                if let Some(site) = hit {
                    // Reconstruct the chain root → … → n.
                    let mut chain_idx = vec![n];
                    let mut cur = n;
                    while let Some(&(p, _)) = from.get(&cur) {
                        chain_idx.push(p);
                        cur = p;
                        if cur == root {
                            break;
                        }
                    }
                    chain_idx.reverse();
                    let first_line = from[&chain_idx[1]].1;
                    let names: Vec<&str> =
                        chain_idx.iter().map(|&k| graph.nodes[k].display.as_str()).collect();
                    let chain: Vec<String> = chain_idx
                        .iter()
                        .map(|&k| {
                            let node = &graph.nodes[k];
                            format!("{}@{}:{}", node.display, graph.files[node.file], node.line)
                        })
                        .collect();
                    let leaf = &graph.nodes[n];
                    diags.push(Diagnostic {
                        file: graph.files[graph.nodes[root].file].clone(),
                        line: first_line,
                        rule,
                        message: format!(
                            "{root_label} `{}` transitively reaches {} in `{}` ({}:{}); chain: {}",
                            graph.nodes[root].display,
                            site.desc,
                            leaf.display,
                            graph.files[leaf.file],
                            site.line,
                            names.join(" -> "),
                        ),
                        chain,
                    });
                }
            }
            for &(next, line) in &graph.edges[n] {
                if next == root || from.contains_key(&next) || covered(next) {
                    continue;
                }
                from.insert(next, (n, line));
                queue.push_back(next);
            }
        }
    }
    diags
}

/// Renders the graph as deterministic DOT: nodes and edges sorted, one
/// line each, suitable as a CI artifact.
pub(crate) fn to_dot(graph: &Graph) -> String {
    let label = |n: &Node| format!("{}:{} {}", graph.files[n.file], n.line, n.display);
    let mut out = String::from("digraph mmr_callgraph {\n");
    for n in &graph.nodes {
        let shape = if n.hot { " [shape=box]" } else { "" };
        out.push_str(&format!("  \"{}\"{};\n", label(n), shape));
    }
    for (caller, outs) in graph.edges.iter().enumerate() {
        for &(callee, _) in outs {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\";\n",
                label(&graph.nodes[caller]),
                label(&graph.nodes[callee])
            ));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::{find_test_regions, parse_fields, parse_items};

    fn graph_of(src: &str, hot_lines: &[u32]) -> Graph {
        let lexed = lex(src);
        let tests = find_test_regions(&lexed.tokens);
        let fns = parse_items(&lexed.tokens, hot_lines, &tests);
        let sites = collect_sites(&lexed.tokens, &fns);
        let mut fields = BTreeMap::new();
        for (s, f, t) in parse_fields(&lexed.tokens) {
            fields.insert((s, f), t);
        }
        build(vec![("a.rs".to_string(), fns, sites)], &fields)
    }

    #[test]
    fn field_typed_receivers_resolve_precisely() {
        let g = graph_of(
            "struct Inner;\nimpl Inner { fn get(&self) {} }\nstruct Outer { inner: Inner }\nimpl Outer { fn go(&self) { self.inner.get(); } }",
            &[],
        );
        let go = g.nodes.iter().position(|n| n.display == "Outer::go").expect("go");
        let get = g.nodes.iter().position(|n| n.display == "Inner::get").expect("get");
        assert_eq!(g.edges[go], vec![(get, 4)]);
    }

    #[test]
    fn std_typed_receivers_produce_no_edges() {
        // `buf` is a Vec: `.push()` must not resolve to the unrelated
        // first-party `Other::push` in another crate.
        let lexed = lex("impl S { fn go(&self, buf: &mut Vec<u8>) { buf.push(1); } }\nstruct S;");
        let fns = parse_items(&lexed.tokens, &[], &[]);
        let sites = collect_sites(&lexed.tokens, &fns);
        let other = lex("struct Other;\nimpl Other { fn push(&mut self) { grow(); } }");
        let ofns = parse_items(&other.tokens, &[], &[]);
        let osites = collect_sites(&other.tokens, &ofns);
        let g = build(
            vec![
                ("crates/a/src/x.rs".to_string(), fns, sites),
                ("crates/b/src/y.rs".to_string(), ofns, osites),
            ],
            &BTreeMap::new(),
        );
        let go = g.nodes.iter().position(|n| n.display == "S::go").expect("go");
        assert!(g.edges[go].is_empty(), "{:?}", g.edges[go]);
    }

    #[test]
    fn edges_resolve_free_and_method_calls() {
        let g = graph_of(
            "fn a() { b(); }\nfn b() { }\nstruct S;\nimpl S { fn m(&self) { a(); self.n(); } fn n(&self) {} }",
            &[],
        );
        assert_eq!(g.nodes.len(), 4);
        let idx = |name: &str| g.nodes.iter().position(|n| n.display == name).expect("node");
        let (a, b, m, n) = (idx("a"), idx("b"), idx("S::m"), idx("S::n"));
        assert_eq!(g.edges[a], vec![(b, 1)]);
        assert!(g.edges[m].iter().any(|&(t, _)| t == a));
        assert!(g.edges[m].iter().any(|&(t, _)| t == n));
    }

    #[test]
    fn chain_is_reported_with_shortest_path() {
        let g = graph_of(
            "// mmr-lint: hot\nfn hot() { mid(); }\nfn mid() { leaf(); }\nfn leaf() { let v = Vec::new(); }",
            &[1],
        );
        let roots: Vec<usize> =
            (0..g.nodes.len()).filter(|&i| g.nodes[i].hot).collect();
        let diags = transitive_diags(
            &g,
            &roots,
            &|i| g.nodes[i].hot,
            LeafKind::Alloc,
            Rule::ATrans,
            "hot fn",
            &mut |_, _| false,
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.line, 2, "anchored at the hot fn's call site");
        assert!(d.message.contains("chain: hot -> mid -> leaf"), "{}", d.message);
        assert_eq!(d.chain.len(), 3);
        assert_eq!(d.chain[0], "hot@a.rs:2");
    }

    #[test]
    fn covered_nodes_are_not_descended() {
        // hot calls another hot fn that allocates: the callee's own direct
        // A-rules cover it, so no transitive finding is reported.
        let g = graph_of(
            "// mmr-lint: hot\nfn a() { b(); }\n// mmr-lint: hot\nfn b() { let v = Vec::new(); }",
            &[1, 3],
        );
        let roots: Vec<usize> = (0..g.nodes.len()).filter(|&i| g.nodes[i].hot).collect();
        let diags = transitive_diags(
            &g,
            &roots,
            &|i| g.nodes[i].hot,
            LeafKind::Alloc,
            Rule::ATrans,
            "hot fn",
            &mut |_, _| false,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dot_is_deterministic_and_complete() {
        let g = graph_of("fn a() { b(); }\nfn b() {}", &[]);
        let dot = to_dot(&g);
        assert!(dot.contains("\"a.rs:1 a\" -> \"a.rs:2 b\";"), "{dot}");
        assert_eq!(dot, to_dot(&g));
    }

    #[test]
    fn sites_cover_all_three_families() {
        let g = graph_of(
            "fn f(xs: &[u8], i: usize) { xs.to_vec(); xs[i]; let c = RefCell::new(1); }",
            &[],
        );
        let kinds: Vec<LeafKind> = g.nodes[0].sites.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&LeafKind::Alloc));
        assert!(kinds.contains(&LeafKind::Panic));
        assert!(kinds.contains(&LeafKind::Shard));
    }
}
