//! `mmr-lint` CLI.
//!
//! ```text
//! mmr-lint [--deny-all] [--root DIR] [--manifest FILE] [--json]
//!          [--emit-callgraph PATH] [--list-rules] [FILE ...]
//! ```
//!
//! With no FILE arguments, analyzes every `.rs` file under `--root`
//! (default: current directory) as one workspace — the call graph spans
//! all files, so A-TRANS/P-TRANS/S-SHARD chains cross crate boundaries.
//! With FILE arguments, analyzes exactly those files as one batch (paths
//! relative to `--root`) — this is how CI exercises the committed fixture
//! violations. `--emit-callgraph PATH` additionally writes the resolved
//! call graph as deterministic DOT.
//!
//! Exit codes: 0 = clean (or findings without `--deny-all`), 1 = findings
//! under `--deny-all`, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use mmr_lint::{analyze_sources, analyze_workspace, load_manifest, Analysis, ALL_RULES};

struct Options {
    deny_all: bool,
    json: bool,
    list_rules: bool,
    root: PathBuf,
    manifest: Option<PathBuf>,
    callgraph: Option<PathBuf>,
    files: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny_all: false,
        json: false,
        list_rules: false,
        root: PathBuf::from("."),
        manifest: None,
        callgraph: None,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny-all" => opts.deny_all = true,
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory")?)
            }
            "--manifest" => {
                opts.manifest = Some(PathBuf::from(args.next().ok_or("--manifest needs a file")?))
            }
            "--emit-callgraph" => {
                opts.callgraph =
                    Some(PathBuf::from(args.next().ok_or("--emit-callgraph needs a path")?))
            }
            "--help" | "-h" => {
                println!(
                    "mmr-lint [--deny-all] [--root DIR] [--manifest FILE] [--json] [--emit-callgraph PATH] [--list-rules] [FILE ...]"
                );
                std::process::exit(0);
            }
            f if !f.starts_with('-') => opts.files.push(f.to_string()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mmr-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in ALL_RULES {
            println!("{:<10} {}", r.id(), r.describe());
        }
        return ExitCode::SUCCESS;
    }

    let manifest_path = opts.manifest.clone().unwrap_or_else(|| opts.root.join("lint.toml"));
    let manifest = match load_manifest(&manifest_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("mmr-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let analysis: Analysis = if opts.files.is_empty() {
        match analyze_workspace(&opts.root, &manifest) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("mmr-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        // Named files are analyzed as one batch so chains span them.
        let mut sources: Vec<(String, String)> = Vec::new();
        for rel in &opts.files {
            let rel = rel.trim_start_matches("./").to_string();
            match std::fs::read_to_string(opts.root.join(&rel)) {
                Ok(s) => sources.push((rel, s)),
                Err(e) => {
                    eprintln!("mmr-lint: {rel}: {e}");
                    return ExitCode::from(2);
                }
            };
        }
        let refs: Vec<(&str, &str)> =
            sources.iter().map(|(p, s)| (p.as_str(), s.as_str())).collect();
        analyze_sources(&refs, &manifest)
    };
    let diags = &analysis.diagnostics;

    if let Some(path) = &opts.callgraph {
        if let Err(e) = std::fs::write(path, analysis.callgraph_dot()) {
            eprintln!("mmr-lint: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if opts.json {
        println!("[");
        for (i, d) in diags.iter().enumerate() {
            let comma = if i + 1 < diags.len() { "," } else { "" };
            println!("  {}{}", d.render_json(), comma);
        }
        println!("]");
    } else {
        for d in diags {
            println!("{}", d.render());
        }
        if !diags.is_empty() {
            eprintln!("mmr-lint: {} diagnostic(s)", diags.len());
        }
    }

    if opts.deny_all && !diags.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
