//! Item-level parsing on top of the token stream: `fn` items, `impl`
//! blocks, and the call/method-call expressions inside each function body.
//!
//! This is deliberately **not** a full Rust parser. It recovers exactly the
//! structure the interprocedural rules need — which function a token
//! belongs to, which type an `impl` block targets, and which names a body
//! calls — by brace/paren/angle matching over the lexer's token stream.
//! Known over-approximations (documented in DESIGN.md §7): method calls
//! resolve by name across all first-party impls (no trait dispatch, no
//! receiver type inference except a literal `self.` receiver), and module
//! paths collapse to their final segment.

use crate::lexer::Token;

/// Half-open token-index range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First token index covered.
    pub start: usize,
    /// One past the last token index covered.
    pub end: usize,
}

impl Region {
    /// Whether token index `i` falls inside the region.
    pub fn contains(&self, i: usize) -> bool {
        i >= self.start && i < self.end
    }
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `foo(..)` or `path::foo(..)` through a lowercase qualifier.
    Free(String),
    /// `Type::method(..)` (uppercase qualifier; `Self` resolves to the
    /// caller's impl type).
    Qualified(String, String),
    /// `self.method(..)` — resolved against the caller's impl type first.
    SelfMethod(String),
    /// `base.field….method(..)` — the receiver is a dotted path of plain
    /// identifiers rooted at `self` or a named local/param, resolved
    /// through declared variable and struct-field types.
    PathMethod(Vec<String>, String),
    /// `expr.method(..)` with an untypeable receiver — resolved by name
    /// across the caller's own crate (the documented over-approximation).
    Method(String),
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Who is (or may be) called.
    pub callee: Callee,
    /// 1-based source line of the call.
    pub line: u32,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The `impl` target type when the fn sits inside an impl block.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub start: usize,
    /// Token range of the body including braces; `None` for body-less
    /// declarations (trait methods, extern fns).
    pub body: Option<Region>,
    /// Whether the fn is annotated `// mmr-lint: hot`.
    pub hot: bool,
    /// Whether the fn sits inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
    /// Call expressions in the body, excluding nested fns' bodies.
    pub calls: Vec<CallSite>,
    /// Declared variable types visible in the body: params plus annotated
    /// or constructor-initialized `let` bindings, as
    /// `(name, type-final-segment)` in declaration order.
    pub vars: Vec<(String, String)>,
}

impl FnItem {
    /// Display name: `Type::name` for methods, `name` for free fns.
    pub fn display(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Parses the fn items of one file. `hot_lines` are the source lines of
/// `// mmr-lint: hot` annotations (each marks the next `fn` at or below
/// it, matching the engine's hot-region rule); `test_regions` are the
/// `#[cfg(test)]` token regions.
pub fn parse_items(tokens: &[Token], hot_lines: &[u32], test_regions: &[Region]) -> Vec<FnItem> {
    let impls = find_impl_regions(tokens);
    let mut fns = find_fn_items(tokens, &impls, test_regions);
    mark_hot(tokens, &mut fns, hot_lines);
    extract_calls(tokens, &mut fns);
    for f in &mut fns {
        f.vars = parse_vars(tokens, f.start, f.body);
    }
    fns
}

/// Collects struct field types from one file as
/// `(struct, field, type-final-segment)` triples. Feeds receiver-type
/// resolution for `self.field.method(..)` calls.
pub fn parse_fields(tokens: &[Token]) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("struct")
            && tokens.get(i + 1).is_some_and(|t| t.kind == crate::lexer::TokenKind::Ident)
        {
            let name = tokens[i + 1].text.clone();
            let mut j = i + 2;
            if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
                j = skip_angles(tokens, j);
            }
            // Tuple structs (`(`) and unit structs (`;`) carry no named
            // fields we can resolve through.
            if tokens.get(j).is_some_and(|t| t.is_punct('{')) {
                let end = skip_item(tokens, j);
                let mut depth = 0i32;
                let mut k = j;
                while k < end.min(tokens.len()) {
                    let t = &tokens[k];
                    if t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct('}') {
                        depth -= 1;
                    } else if depth == 1
                        && t.kind == crate::lexer::TokenKind::Ident
                        && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
                    {
                        let prev = k.checked_sub(1).and_then(|p| tokens.get(p));
                        let field_pos = prev.is_some_and(|p| {
                            p.is_punct('{') || p.is_punct(',') || p.is_punct(')') || p.is_ident("pub")
                        });
                        if field_pos {
                            let (ty, after) = read_type_path(tokens, k + 2);
                            if !ty.is_empty() {
                                out.push((name.clone(), t.text.clone(), ty));
                            }
                            k = after;
                            continue;
                        }
                    }
                    k += 1;
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Collects `(name, type)` pairs for a fn's params and its annotated or
/// constructor-initialized `let` bindings. Types collapse to their final
/// path segment with generics stripped (`&mut Vec<Flit>` → `Vec`).
fn parse_vars(tokens: &[Token], fn_start: usize, body: Option<Region>) -> Vec<(String, String)> {
    let mut out = Vec::new();
    // Params: between the signature's outer parens at depth 1.
    let sig_end = body.map_or(tokens.len(), |b| b.start);
    let mut i = fn_start;
    while i < sig_end && !tokens[i].is_punct('(') {
        i += 1;
    }
    let mut depth = 0i32;
    while i < sig_end {
        let t = &tokens[i];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1
            && t.kind == crate::lexer::TokenKind::Ident
            && !t.is_ident("self")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
        {
            let (ty, after) = read_type_path(tokens, i + 2);
            if !ty.is_empty() {
                out.push((t.text.clone(), ty));
            }
            i = after;
            continue;
        }
        i += 1;
    }
    // Lets inside the body.
    let Some(b) = body else { return out };
    let mut i = b.start;
    while i < b.end.min(tokens.len()) {
        if tokens[i].is_ident("let") {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name_tok) = tokens.get(j) else { break };
            if name_tok.kind == crate::lexer::TokenKind::Ident && !is_expr_keyword(&name_tok.text)
            {
                let name = name_tok.text.clone();
                if tokens.get(j + 1).is_some_and(|t| t.is_punct(':')) {
                    // `let name: Type = ..`
                    let (ty, after) = read_type_path(tokens, j + 2);
                    if !ty.is_empty() {
                        out.push((name, ty));
                    }
                    i = after;
                    continue;
                }
                if tokens.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                    // `let name = Type::ctor(..)` / `let name = Type { .. }`:
                    // the last uppercase-initial path segment is the type.
                    let mut k = j + 2;
                    let mut ty = None;
                    while let Some(t) = tokens.get(k) {
                        if t.kind == crate::lexer::TokenKind::Ident {
                            if t.text.chars().next().is_some_and(char::is_uppercase) {
                                ty = Some(t.text.clone());
                            }
                            k += 1;
                            if tokens.get(k).is_some_and(|t| t.is_punct('<')) {
                                k = skip_angles(tokens, k);
                            }
                            if tokens.get(k).is_some_and(|t| t.text == "::") {
                                k += 1;
                                continue;
                            }
                        }
                        break;
                    }
                    let ctor_pos = tokens.get(k).is_some_and(|t| {
                        t.is_punct('(') || t.is_punct('{')
                    });
                    if let (Some(ty), true) = (ty, ctor_pos) {
                        out.push((name, ty));
                    }
                    i = k;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Finds `#[cfg(test)]` / `#[test]` regions: the attribute plus the item it
/// annotates (brace-matched, or up to `;` for brace-less items).
pub fn find_test_regions(tokens: &[Token]) -> Vec<Region> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Scan the attribute body for `test` / `cfg(..test..)`.
            let mut j = i + 2;
            let mut depth = 1u32;
            let mut is_test_attr = false;
            while j < tokens.len() && depth > 0 {
                let t = &tokens[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                } else if t.is_ident("test") || t.is_ident("tests") {
                    is_test_attr = true;
                }
                j += 1;
            }
            if is_test_attr {
                // Skip any further attributes, then the item itself.
                let mut k = j;
                while k < tokens.len()
                    && tokens[k].is_punct('#')
                    && tokens.get(k + 1).is_some_and(|t| t.is_punct('['))
                {
                    let mut d = 1u32;
                    k += 2;
                    while k < tokens.len() && d > 0 {
                        if tokens[k].is_punct('[') {
                            d += 1;
                        } else if tokens[k].is_punct(']') {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                let end = skip_item(tokens, k);
                regions.push(Region { start: i, end });
                i = end;
                continue;
            }
        }
        i += 1;
    }
    regions
}

/// Given the first token of an item, returns the index one past its end:
/// past the matching `}` of its first brace at depth 0, or past the first
/// top-level `;` for brace-less items (`use`, `type`, …).
pub fn skip_item(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    let mut paren = 0i32;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct(';') && paren <= 0 {
            return i + 1;
        } else if t.is_punct('{') && paren <= 0 {
            let mut depth = 1i32;
            i += 1;
            while i < tokens.len() && depth > 0 {
                if tokens[i].is_punct('{') {
                    depth += 1;
                } else if tokens[i].is_punct('}') {
                    depth -= 1;
                }
                i += 1;
            }
            return i;
        }
        i += 1;
    }
    i
}

/// One `impl` block: its target type and brace-matched body region.
struct ImplRegion {
    ty: String,
    body: Region,
}

/// Whether the `impl` at `i` begins an impl item (as opposed to an
/// `impl Trait` type position such as `-> impl Iterator` or
/// `(impl Fn(..))`). Item position follows nothing, `}`, `;`, `]` (an
/// attribute), or `{` (module body).
fn is_item_impl(tokens: &[Token], i: usize) -> bool {
    match i.checked_sub(1).and_then(|j| tokens.get(j)) {
        None => true,
        Some(p) => p.is_punct('}') || p.is_punct(';') || p.is_punct(']') || p.is_punct('{'),
    }
}

/// Skips a generic-argument list starting at `<`, honoring `->` arrows
/// whose `>` must not count as a closer. Returns the index one past the
/// matching `>`.
fn skip_angles(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            let arrow = i > 0 && tokens[i - 1].is_punct('-');
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
        }
        i += 1;
    }
    i
}

/// Reads a type path (`a::b::Type<..>`) starting at `i`; returns the final
/// segment and the index one past the path.
fn read_type_path(tokens: &[Token], mut i: usize) -> (String, usize) {
    // Skip reference/pointer sigils.
    while tokens
        .get(i)
        .is_some_and(|t| t.is_punct('&') || t.is_punct('*') || t.is_ident("mut") || t.is_ident("const") || t.is_ident("dyn"))
    {
        i += 1;
    }
    let mut last = String::new();
    while let Some(t) = tokens.get(i) {
        if t.kind == crate::lexer::TokenKind::Ident {
            last = t.text.clone();
            i += 1;
            if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
                i = skip_angles(tokens, i);
            }
            if tokens.get(i).is_some_and(|t| t.text == "::") {
                i += 1;
                continue;
            }
        }
        break;
    }
    (last, i)
}

/// Finds every `impl` block and its target type. `impl Trait for Type`
/// records `Type`; `impl Type` records `Type`.
fn find_impl_regions(tokens: &[Token]) -> Vec<ImplRegion> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("impl") && is_item_impl(tokens, i) {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
                j = skip_angles(tokens, j);
            }
            let (first_ty, after) = read_type_path(tokens, j);
            let mut ty = first_ty;
            let mut k = after;
            if tokens.get(k).is_some_and(|t| t.is_ident("for")) {
                let (target, after_for) = read_type_path(tokens, k + 1);
                ty = target;
                k = after_for;
            }
            // Skip the where clause (if any) to the body `{`.
            while k < tokens.len() && !tokens[k].is_punct('{') {
                k += 1;
            }
            if k < tokens.len() && !ty.is_empty() {
                let end = skip_item(tokens, k);
                out.push(ImplRegion { ty, body: Region { start: k, end } });
                i = k + 1; // descend: nested items stay inside the region
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Finds every `fn` item, resolving its impl type and body region.
fn find_fn_items(
    tokens: &[Token],
    impls: &[ImplRegion],
    test_regions: &[Region],
) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            let Some(name_tok) = tokens.get(i + 1) else {
                break;
            };
            if name_tok.kind != crate::lexer::TokenKind::Ident {
                i += 1;
                continue;
            }
            // Innermost impl region containing this fn wins.
            let self_ty = impls
                .iter()
                .filter(|r| r.body.contains(i))
                .min_by_key(|r| r.body.end - r.body.start)
                .map(|r| r.ty.clone());
            let body = find_fn_body(tokens, i + 2);
            out.push(FnItem {
                name: name_tok.text.clone(),
                self_ty,
                line: tokens[i].line,
                start: i,
                body,
                hot: false,
                in_test: test_regions.iter().any(|r| r.contains(i)),
                calls: Vec::new(),
                vars: Vec::new(),
            });
        }
        i += 1;
    }
    out
}

/// Scans a fn signature from just past the name to the body `{` (or `;`
/// for body-less declarations) and brace-matches the body.
fn find_fn_body(tokens: &[Token], mut i: usize) -> Option<Region> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut angle = 0i32;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            // `->` return arrows must not close a generic list.
            if !(i > 0 && tokens[i - 1].is_punct('-')) {
                angle = (angle - 1).max(0);
            }
        } else if t.is_punct(';') && paren <= 0 && bracket <= 0 {
            return None;
        } else if t.is_punct('{') && paren <= 0 && bracket <= 0 && angle <= 0 {
            let end = skip_item(tokens, i);
            return Some(Region { start: i, end });
        }
        i += 1;
    }
    None
}

/// Marks hot fns: each annotation line marks the first `fn` whose keyword
/// sits at or below it (same rule the engine uses for hot regions).
fn mark_hot(tokens: &[Token], fns: &mut [FnItem], hot_lines: &[u32]) {
    for &line in hot_lines {
        if let Some(f) = fns
            .iter_mut()
            .filter(|f| tokens[f.start].line >= line)
            .min_by_key(|f| f.start)
        {
            f.hot = true;
        }
    }
}

/// Keywords that look like call syntax but are not calls.
fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while" | "match" | "for" | "loop" | "return" | "fn" | "in" | "as" | "let"
            | "mut" | "ref" | "move" | "else" | "await" | "box" | "unsafe" | "where" | "use"
            | "pub" | "crate" | "super" | "mod" | "impl" | "dyn" | "const" | "static" | "type"
    )
}

/// Extracts call sites from every fn body, attributing each to the
/// innermost enclosing fn (so nested fns own their calls). Attribute
/// bodies `#[...]` are skipped.
fn extract_calls(tokens: &[Token], fns: &mut [FnItem]) {
    // Sort fn indices so the innermost (latest-starting) body wins lookup.
    let mut order: Vec<usize> = (0..fns.len()).collect();
    order.sort_by_key(|&k| fns[k].start);
    let owner_of = |i: usize, fns: &[FnItem]| -> Option<usize> {
        order
            .iter()
            .copied()
            .filter(|&k| fns[k].body.is_some_and(|b| b.contains(i)))
            .max_by_key(|&k| fns[k].start)
    };

    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes wholesale: `derive(..)`, `cfg(..)` are not calls.
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let mut depth = 1u32;
            i += 2;
            while i < tokens.len() && depth > 0 {
                if tokens[i].is_punct('[') {
                    depth += 1;
                } else if tokens[i].is_punct(']') {
                    depth -= 1;
                }
                i += 1;
            }
            continue;
        }
        if let Some(site) = call_at(tokens, i) {
            if let Some(owner) = owner_of(i, fns) {
                if !fns[owner].in_test {
                    fns[owner].calls.push(site);
                }
            }
        }
        i += 1;
    }
}

/// Recognizes a call expression whose callee name sits at token `i`.
fn call_at(tokens: &[Token], i: usize) -> Option<CallSite> {
    let t = &tokens[i];
    if t.kind != crate::lexer::TokenKind::Ident || is_expr_keyword(&t.text) {
        return None;
    }
    // The callee name must be followed by `(`, optionally through a
    // turbofish `::<..>`.
    let mut after = i + 1;
    if tokens.get(after).is_some_and(|n| n.text == "::")
        && tokens.get(after + 1).is_some_and(|n| n.is_punct('<'))
    {
        after = skip_angles(tokens, after + 1);
    }
    if !tokens.get(after).is_some_and(|n| n.is_punct('(')) {
        return None;
    }
    let prev = i.checked_sub(1).and_then(|j| tokens.get(j));
    // `fn name(` is a declaration, not a call.
    if prev.is_some_and(|p| p.is_ident("fn")) {
        return None;
    }
    let line = t.line;
    let name = t.text.clone();
    if prev.is_some_and(|p| p.is_punct('.')) {
        // Walk the dotted receiver path back: `base.f1.f2.method(` yields
        // segments [base, f1, f2] when every hop is a plain identifier.
        let mut segs: Vec<String> = Vec::new();
        let mut dot = i - 1; // index of the `.` before the method name
        loop {
            let Some(seg_idx) = dot.checked_sub(1) else {
                segs.clear();
                break;
            };
            let seg = &tokens[seg_idx];
            if seg.kind != crate::lexer::TokenKind::Ident || is_expr_keyword(&seg.text) {
                // `).method(`, `].method(`, `.0.method(`, `}.method(` —
                // untypeable receiver.
                if !seg.is_ident("self") {
                    segs.clear();
                    break;
                }
            }
            segs.push(seg.text.clone());
            match seg_idx.checked_sub(1).and_then(|j| tokens.get(j)) {
                Some(p) if p.is_punct('.') => dot = seg_idx - 1,
                // `Enum::VARIANT.method(` — qualified receiver, untypeable.
                Some(p) if p.text == "::" => {
                    segs.clear();
                    break;
                }
                _ => break,
            }
        }
        segs.reverse();
        if segs.len() == 1 && segs[0] == "self" {
            return Some(CallSite { callee: Callee::SelfMethod(name), line });
        }
        if !segs.is_empty() {
            return Some(CallSite { callee: Callee::PathMethod(segs, name), line });
        }
        return Some(CallSite { callee: Callee::Method(name), line });
    }
    if prev.is_some_and(|p| p.text == "::") {
        let qual = i.checked_sub(2).and_then(|j| tokens.get(j));
        if let Some(q) = qual {
            if q.kind == crate::lexer::TokenKind::Ident
                && q.text.chars().next().is_some_and(char::is_uppercase)
            {
                return Some(CallSite { callee: Callee::Qualified(q.text.clone(), name), line });
            }
            // Generic qualifier `Vec::<u8>::new` — the qualifier is `>`;
            // walk back over the turbofish to the type name.
            if q.is_punct('>') {
                return None; // rare; skip rather than mis-resolve
            }
        }
        // Module-qualified free call (`mem::swap`, `self::helper`).
        return Some(CallSite { callee: Callee::Free(name), line });
    }
    // Plain `name(..)`: tuple-struct/variant constructors start uppercase
    // and are not calls we track; macros are `name!(..)` and never reach
    // here (the `!` breaks the `(` adjacency).
    if name.chars().next().is_some_and(char::is_uppercase) {
        return None;
    }
    Some(CallSite { callee: Callee::Free(name), line })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<FnItem> {
        let lexed = lex(src);
        let tests = find_test_regions(&lexed.tokens);
        parse_items(&lexed.tokens, &[], &tests)
    }

    #[test]
    fn finds_free_and_impl_fns() {
        let fns = parse("fn a() {}\nstruct S;\nimpl S { fn b(&self) {} }\nimpl Clone for S { fn clone(&self) -> S { S } }");
        let names: Vec<String> = fns.iter().map(FnItem::display).collect();
        assert_eq!(names, vec!["a", "S::b", "S::clone"]);
    }

    #[test]
    fn impl_with_generics_and_paths() {
        let fns = parse("impl<T: Copy> Wrapper<T> { fn get(&self) -> T { self.0 } }\nimpl fmt::Display for Id { fn fmt(&self) {} }");
        let names: Vec<String> = fns.iter().map(FnItem::display).collect();
        assert_eq!(names, vec!["Wrapper::get", "Id::fmt"]);
    }

    #[test]
    fn return_position_impl_is_not_an_impl_block() {
        let fns = parse("fn make() -> impl Iterator<Item = u8> { [1u8].into_iter() }\nfn after() {}");
        assert_eq!(fns.len(), 2);
        assert!(fns.iter().all(|f| f.self_ty.is_none()));
        assert!(fns[0].body.is_some());
    }

    #[test]
    fn call_kinds_are_classified() {
        let fns =
            parse("fn f(&self) { helper(); self.step(); other.run(); Flit::new(); mem::swap(a, b); }");
        let calls = &fns[0].calls;
        assert_eq!(calls.len(), 5, "{calls:?}");
        assert_eq!(calls[0].callee, Callee::Free("helper".into()));
        assert_eq!(calls[1].callee, Callee::SelfMethod("step".into()));
        assert_eq!(calls[2].callee, Callee::PathMethod(vec!["other".into()], "run".into()));
        assert_eq!(calls[3].callee, Callee::Qualified("Flit".into(), "new".into()));
        assert_eq!(calls[4].callee, Callee::Free("swap".into()));
    }

    #[test]
    fn constructors_macros_and_keywords_are_not_calls() {
        let fns = parse("fn f() { if (x) {} ; let s = Some(1); vec!(1); #[cfg(feature = \"x\")] g(); }");
        let calls = &fns[0].calls;
        assert_eq!(calls.len(), 1, "{calls:?}");
        assert_eq!(calls[0].callee, Callee::Free("g".into()));
    }

    #[test]
    fn turbofish_methods_are_calls() {
        let fns = parse("fn f(v: &[u8]) { v.iter().collect::<Vec<_>>(); }");
        let names: Vec<&Callee> = fns[0].calls.iter().map(|c| &c.callee).collect();
        assert!(names.contains(&&Callee::Method("collect".into())), "{names:?}");
    }

    #[test]
    fn test_fns_do_not_record_calls() {
        let fns = parse("fn live() { helper(); }\n#[cfg(test)]\nmod t { fn dead() { helper(); } }");
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].calls.len(), 1);
        assert!(fns[1].in_test);
        assert!(fns[1].calls.is_empty());
    }

    #[test]
    fn nested_fn_owns_its_calls() {
        let fns = parse("fn outer() { fn inner() { leaf(); } inner(); }");
        assert_eq!(fns.len(), 2);
        let outer = fns.iter().find(|f| f.name == "outer").expect("outer");
        let inner = fns.iter().find(|f| f.name == "inner").expect("inner");
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].callee, Callee::Free("inner".into()));
        assert_eq!(inner.calls.len(), 1);
        assert_eq!(inner.calls[0].callee, Callee::Free("leaf".into()));
    }

    #[test]
    fn where_clauses_and_complex_returns_parse() {
        let fns = parse(
            "fn apply<F>(f: F) -> Vec<u8> where F: Fn(u8) -> bool { run(f) }\nfn next() {}",
        );
        assert_eq!(fns.len(), 2);
        assert!(fns[0].body.is_some());
        assert_eq!(fns[0].calls.len(), 1);
    }

    #[test]
    fn trait_declarations_have_no_body() {
        let fns = parse("trait T { fn required(&self); fn provided(&self) { self.required(); } }");
        assert_eq!(fns.len(), 2);
        assert!(fns[0].body.is_none());
        assert!(fns[1].body.is_some());
    }

    #[test]
    fn hot_annotation_marks_the_next_fn() {
        let lexed = lex("// mmr-lint: hot\nfn fast() {}\nfn slow() {}");
        let fns = parse_items(&lexed.tokens, &[1], &[]);
        assert!(fns[0].hot);
        assert!(!fns[1].hot);
    }
}
