//! `mmr-lint` — workspace static analysis for the MMR simulator.
//!
//! Enforces, at CI time, the three properties the simulator's correctness
//! story rests on:
//!
//! - **Determinism (D-lints)**: byte-identical sweeps at any `--jobs`
//!   require no hash-order iteration, no wall-clock reads, no seed-free
//!   RNGs, and exact integer arithmetic in credit/quota ledgers.
//! - **Panic-freedom (P-lints)**: the per-flit-cycle data path (router,
//!   schedulers, VC memory, LLR, the network delivery path) must degrade
//!   via typed errors or audited counters, never by panicking mid-campaign.
//! - **No hot-path allocation (A-lints)**: functions annotated
//!   `// mmr-lint: hot` must not allocate; scheduler inner loops are
//!   fixed-work, fixed-time structures (cf. Tiny Tera's scheduler design).
//!
//! The tool is self-contained: its own tokenizer ([`lexer`]), a tiny
//! TOML-subset manifest parser ([`manifest`]), and hand-rolled JSON output.
//! See `DESIGN.md` §7 for the rule table and annotation grammar.

pub mod diag;
pub mod engine;
mod graph;
pub mod lexer;
pub mod manifest;
mod parse;

pub use diag::{Diagnostic, Rule, ALL_RULES};
pub use manifest::Manifest;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The result of a full analysis run: the diagnostics plus the call graph
/// they were computed over (for `--emit-callgraph`).
pub struct Analysis {
    /// All findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    graph: graph::Graph,
}

impl Analysis {
    /// Renders the workspace call graph as deterministic DOT: nodes are
    /// `file:line name` (hot fns boxed), edges are resolved calls.
    pub fn callgraph_dot(&self) -> String {
        graph::to_dot(&self.graph)
    }
}

/// Analyzes a batch of sources as one workspace: the call graph spans all
/// of them, so interprocedural rules see cross-file chains. Each entry is
/// `(workspace-relative path, source text)`.
pub fn analyze_sources(files: &[(&str, &str)], manifest: &Manifest) -> Analysis {
    let analyses =
        files.iter().map(|(p, s)| engine::analyze_file(p, s, manifest)).collect::<Vec<_>>();
    let (diagnostics, graph) = engine::finalize(analyses, manifest);
    Analysis { diagnostics, graph }
}

/// Lints one file's source text (a one-file workspace). `rel_path` must be
/// the workspace-relative `/`-separated path (used for designation lookups
/// and diagnostics).
pub fn check_source(rel_path: &str, src: &str, manifest: &Manifest) -> Vec<Diagnostic> {
    engine::check_file(rel_path, src, manifest)
}

/// Walks `root` for `.rs` files, skipping manifest-excluded prefixes plus
/// the built-in `target` / `.git` / hidden directories, and analyzes them
/// all as one workspace (direct rules plus call-graph rules).
pub fn analyze_workspace(root: &Path, manifest: &Manifest) -> io::Result<Analysis> {
    let mut files = Vec::new();
    collect_rs_files(root, root, manifest, &mut files)?;
    files.sort();
    let mut sources = Vec::new();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        sources.push((rel, src));
    }
    let refs: Vec<(&str, &str)> =
        sources.iter().map(|(p, s)| (p.as_str(), s.as_str())).collect();
    Ok(analyze_sources(&refs, manifest))
}

/// Like [`analyze_workspace`], returning only the diagnostics.
pub fn check_workspace(root: &Path, manifest: &Manifest) -> io::Result<Vec<Diagnostic>> {
    analyze_workspace(root, manifest).map(|a| a.diagnostics)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    manifest: &Manifest,
    out: &mut Vec<String>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        let rel = match path.strip_prefix(root) {
            Ok(r) => manifest::normalize(r),
            Err(_) => continue,
        };
        if manifest.is_excluded(&rel) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, manifest, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Loads the manifest at `path`, or the empty manifest when the file does
/// not exist (every path-scoped rule then applies nowhere; global rules
/// still run).
pub fn load_manifest(path: &Path) -> Result<Manifest, String> {
    match fs::read_to_string(path) {
        Ok(src) => Manifest::parse(&src).map_err(|e| e.to_string()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Manifest::default()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_walk_skips_excluded_dirs() {
        let tmp = std::env::temp_dir().join(format!("mmr-lint-walk-{}", std::process::id()));
        let _ = fs::remove_dir_all(&tmp);
        fs::create_dir_all(tmp.join("src")).expect("mkdir");
        fs::create_dir_all(tmp.join("vendor/dep/src")).expect("mkdir");
        fs::write(tmp.join("src/a.rs"), "use std::collections::HashMap;\n").expect("write");
        fs::write(tmp.join("vendor/dep/src/b.rs"), "use std::collections::HashMap;\n")
            .expect("write");
        let m = Manifest::parse("[paths]\nexclude = [\"vendor\"]").expect("manifest");
        let diags = check_workspace(&tmp, &m).expect("walk");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].file, "src/a.rs");
        let _ = fs::remove_dir_all(&tmp);
    }
}
