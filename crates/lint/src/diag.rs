//! Diagnostics: rule IDs, structured findings, and deterministic rendering.

use std::fmt;

/// Every rule the linter knows. The discriminant order defines the sort
/// order of same-line diagnostics, so output is fully deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// HashMap/HashSet in first-party code (iteration order feeds stats).
    DHash,
    /// std::time / SystemTime / Instant in simulation crates.
    DTime,
    /// Seed-free RNG construction outside the point_seed discipline.
    DRng,
    /// Float literals/types in integer-ledger accounting modules.
    DFloat,
    /// Iteration over a hash-ordered collection in an order-strict crate.
    DIter,
    /// `.unwrap()` in a panic-free module.
    PUnwrap,
    /// `.expect(..)` in a panic-free module.
    PExpect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` / `assert!`
    /// family in a panic-free module.
    PPanic,
    /// Bare slice indexing `x[i]` in an index-free module.
    PIndex,
    /// A function in a panic-free module transitively reaches a panicking
    /// site (`unwrap`/`expect`/`panic!`/bare indexing) in a first-party
    /// callee outside the designated modules.
    PTrans,
    /// Allocating constructor (`Vec::new`, `Box::new`, `vec!`, `format!`,
    /// `to_vec`, `collect`, `clone` of owned containers…) in a hot function.
    AAlloc,
    /// `.push(..)` / `.insert(..)` growth calls in a hot function.
    APush,
    /// A `// mmr-lint: hot` function transitively reaches an allocating
    /// site in a first-party callee.
    ATrans,
    /// Shard-unsafe construct (`static mut`, `thread_local!`, `Rc`,
    /// `RefCell`, `Cell`, raw-pointer types) in — or transitively reached
    /// from — a `[shard_safe]` module.
    SShard,
    /// An `mmr-lint: allow(...)` annotation that is malformed or carries no
    /// non-empty `reason=`.
    LReason,
    /// An allow annotation that suppressed nothing (stale escape hatch).
    LUnused,
}

/// All rules, in ID order. The fixture meta-test iterates this.
pub const ALL_RULES: [Rule; 16] = [
    Rule::DHash,
    Rule::DTime,
    Rule::DRng,
    Rule::DFloat,
    Rule::DIter,
    Rule::PUnwrap,
    Rule::PExpect,
    Rule::PPanic,
    Rule::PIndex,
    Rule::PTrans,
    Rule::AAlloc,
    Rule::APush,
    Rule::ATrans,
    Rule::SShard,
    Rule::LReason,
    Rule::LUnused,
];

impl Rule {
    /// Stable ID as written in annotations and printed in diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            Rule::DHash => "D-HASH",
            Rule::DTime => "D-TIME",
            Rule::DRng => "D-RNG",
            Rule::DFloat => "D-FLOAT",
            Rule::DIter => "D-ITER",
            Rule::PUnwrap => "P-UNWRAP",
            Rule::PExpect => "P-EXPECT",
            Rule::PPanic => "P-PANIC",
            Rule::PIndex => "P-INDEX",
            Rule::PTrans => "P-TRANS",
            Rule::AAlloc => "A-ALLOC",
            Rule::APush => "A-PUSH",
            Rule::ATrans => "A-TRANS",
            Rule::SShard => "S-SHARD",
            Rule::LReason => "L-REASON",
            Rule::LUnused => "L-UNUSED",
        }
    }

    /// One-line description for `--list-rules` and the docs table.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::DHash => "HashMap/HashSet in first-party code: iteration order is nondeterministic and can reach stats or serialized output; use BTreeMap/BTreeSet or sorted iteration",
            Rule::DTime => "std::time (SystemTime/Instant/Duration clocks) in simulation code: wall-clock reads break byte-identical sweeps; simulated time must come from flit-cycle counters",
            Rule::DRng => "RNG constructed without an explicit seed (from_entropy/thread_rng/seed_from_u64 of a non-literal outside point_seed): breaks sweep reproducibility",
            Rule::DFloat => "float literal or f32/f64 type in an integer-ledger accounting module: credit/quota arithmetic must stay exact",
            Rule::DIter => "iteration over a HashMap/HashSet-typed value in an order-strict crate ([deterministic] iter_strict): hash order is nondeterministic taint; use BTreeMap/BTreeSet or sort before iterating",
            Rule::PUnwrap => ".unwrap() in a designated panic-free module: convert to a typed error, audited counter, or graceful skip",
            Rule::PExpect => ".expect(..) in a designated panic-free module: convert to a typed error, audited counter, or graceful skip",
            Rule::PPanic => "panic!/unreachable!/todo!/unimplemented!/assert! in a designated panic-free module",
            Rule::PIndex => "bare slice indexing x[i] in a designated index-free module: use get()/get_mut() and handle None",
            Rule::PTrans => "function in a [panic_free] module transitively reaches unwrap/expect/panic!/bare indexing in a first-party callee outside the designated modules (call chain reported)",
            Rule::AAlloc => "allocating call (Vec::new, vec!, format!, Box::new, to_vec, collect, String::new, with_capacity) inside a `// mmr-lint: hot` function",
            Rule::APush => "growth call (.push/.insert/.extend/.resize) inside a `// mmr-lint: hot` function: may reallocate; reuse preallocated buffers and annotate amortized cases",
            Rule::ATrans => "`// mmr-lint: hot` function transitively reaches an allocating call in a first-party callee (call chain reported)",
            Rule::SShard => "shard-unsafe construct (static mut, thread_local!, Rc/RefCell/Cell, raw-pointer types) in — or transitively reached from — a [shard_safe] module (the single-owner router-step path)",
            Rule::LReason => "mmr-lint allow annotation that is malformed or lacks a non-empty reason=\"...\"",
            Rule::LUnused => "mmr-lint allow annotation that suppressed no diagnostic: remove the stale escape hatch",
        }
    }

    /// Parses an ID as written in an allow annotation.
    pub fn from_id(s: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human message (what was found, not why the rule exists).
    pub message: String,
    /// For interprocedural rules (A-TRANS, P-TRANS, S-SHARD chains): the
    /// call chain from the designated root function to the offending leaf,
    /// as `name@file:line` hops. Empty for single-site diagnostics.
    pub chain: Vec<String>,
}

impl Diagnostic {
    /// Builds a single-site diagnostic (no call chain).
    pub fn new(file: &str, line: u32, rule: Rule, message: String) -> Diagnostic {
        Diagnostic { file: file.to_string(), line, rule, message, chain: Vec::new() }
    }

    /// Renders the canonical single-line form used in golden tests and CI
    /// logs: `file:line: RULE-ID: message`.
    pub fn render(&self) -> String {
        format!("{}:{}: {}: {}", self.file, self.line, self.rule.id(), self.message)
    }

    /// Renders as a JSON object (hand-rolled; keys in fixed order). The
    /// `chain` key carries the full call chain for interprocedural findings
    /// (empty array otherwise).
    pub fn render_json(&self) -> String {
        let chain: Vec<String> =
            self.chain.iter().map(|h| format!("\"{}\"", json_escape(h))).collect();
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\",\"chain\":[{}]}}",
            json_escape(&self.file),
            self.line,
            self.rule.id(),
            json_escape(&self.message),
            chain.join(",")
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for r in ALL_RULES {
            assert_eq!(Rule::from_id(r.id()), Some(r));
        }
        assert_eq!(Rule::from_id("D-NOPE"), None);
    }

    #[test]
    fn render_is_stable() {
        let d = Diagnostic::new("crates/x/src/a.rs", 7, Rule::PUnwrap, "call to .unwrap()".into());
        assert_eq!(d.render(), "crates/x/src/a.rs:7: P-UNWRAP: call to .unwrap()");
        assert!(d.render_json().starts_with("{\"file\":"));
        assert!(d.render_json().ends_with("\"chain\":[]}"));
    }

    #[test]
    fn json_carries_the_chain() {
        let mut d = Diagnostic::new("a.rs", 3, Rule::ATrans, "chain finding".into());
        d.chain = vec!["step@a.rs:3".into(), "helper@a.rs:9".into()];
        assert!(d.render_json().contains("\"chain\":[\"step@a.rs:3\",\"helper@a.rs:9\"]"));
    }
}
