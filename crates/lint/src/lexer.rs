//! A lightweight Rust tokenizer — just enough lexical structure for the
//! lint rules.
//!
//! The linter must never be confused by rule trigger words appearing inside
//! comments, doc examples, or string literals, so the lexer handles the full
//! lexical grammar for those forms: nested block comments, raw strings with
//! arbitrarily many `#`s, byte/char literals, and lifetimes. Everything else
//! (identifiers, numbers, punctuation) is tokenized shallowly; the rules
//! work on token sequences, not on a parse tree. This keeps the tool
//! dependency-free and fast (<2 s over the workspace), consistent with the
//! vendored-deps policy: no `syn`, no `proc-macro2`, no registry crates.

/// What a token is, lexically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident,
    /// Integer literal (`42`, `0xFF`, `1_000`).
    Int,
    /// Floating-point literal (`1.0`, `2e9`, `0.5f64`).
    Float,
    /// String, raw-string, byte-string, or char literal.
    Literal,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// One punctuation character (`.`, `(`, `[`, `!`, …).
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// The token text (owned; files are small and lexed once).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One comment with its source position (line `//` and block `/* */` alike,
/// including doc comments). Comments carry the lint annotations
/// (`mmr-lint: hot`, `mmr-lint: allow(...)`), so the lexer surfaces them as
/// a side channel instead of discarding them.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//`/`/*` framing, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Whether any non-whitespace code precedes the comment on its line
    /// (trailing comments annotate their own line; standalone comments
    /// annotate the next code line).
    pub trailing: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes Rust source. Never fails: unterminated forms run to the end of
/// the file (the compiler proper reports those; the linter only needs to not
/// mis-scan).
pub fn lex(src: &str) -> Lexed {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, line_had_code: false, out: Lexed::default() }
        .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    /// Whether a code token has been emitted on the current line.
    line_had_code: bool,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.line_had_code = false;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_string() => {}
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b':' if self.peek(1) == Some(b':') => {
                    // Merge `::` into one token so path patterns
                    // (`Vec::new`, `std::time`) match on adjacent tokens.
                    let start = self.pos;
                    self.pos += 2;
                    self.emit(TokenKind::Punct, start);
                }
                b'0'..=b'9' => self.number(),
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                _ => {
                    // Multi-byte UTF-8 inside code is only legal in idents
                    // and literals (both handled above); treat anything else
                    // byte-wise as punctuation.
                    let start = self.pos;
                    self.pos += utf8_len(c);
                    self.emit(TokenKind::Punct, start);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn emit(&mut self, kind: TokenKind, start: usize) {
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.tokens.push(Token { kind, text, line: self.line });
        self.line_had_code = true;
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let trailing = self.line_had_code;
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        let body = String::from_utf8_lossy(&self.src[start..self.pos]);
        let text = body.trim_start_matches('/').trim_start_matches('!').trim().to_string();
        self.out.comments.push(Comment { text, line: start_line, trailing });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let trailing = self.line_had_code;
        let start = self.pos;
        self.pos += 2;
        let mut depth = 1u32;
        while self.pos < self.src.len() && depth > 0 {
            match (self.src[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let body = String::from_utf8_lossy(&self.src[start..self.pos]);
        let text = body
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start_matches('!')
            .trim_end_matches('/')
            .trim_end_matches('*')
            .trim()
            .to_string();
        self.out.comments.push(Comment { text, line: start_line, trailing });
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`. Returns false
    /// when the `r`/`b` starts a plain identifier instead.
    fn raw_or_byte_string(&mut self) -> bool {
        let start = self.pos;
        let mut i = self.pos;
        if self.src[i] == b'b' {
            i += 1;
        }
        if self.src.get(i) == Some(&b'r') {
            i += 1;
        }
        let mut hashes = 0usize;
        while self.src.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        let raw = self.src.get(self.pos) == Some(&b'r')
            || (self.src.get(self.pos) == Some(&b'b') && self.src.get(self.pos + 1) == Some(&b'r'));
        match self.src.get(i) {
            Some(b'"') if raw || hashes == 0 => {
                if !raw && hashes > 0 {
                    return false; // `b#...` is not a string start
                }
                self.pos = i + 1;
                if raw {
                    // Raw string: ends at `"` followed by `hashes` hashes.
                    loop {
                        match self.src.get(self.pos) {
                            None => break,
                            Some(b'\n') => {
                                self.line += 1;
                                self.pos += 1;
                            }
                            Some(b'"') => {
                                self.pos += 1;
                                let mut h = 0;
                                while h < hashes && self.src.get(self.pos + h) == Some(&b'#') {
                                    h += 1;
                                }
                                if h == hashes {
                                    self.pos += hashes;
                                    break;
                                }
                            }
                            _ => self.pos += 1,
                        }
                    }
                } else {
                    self.cooked_string_tail();
                }
                self.emit(TokenKind::Literal, start);
                true
            }
            Some(b'\'') if self.src.get(self.pos) == Some(&b'b') && hashes == 0 && !raw => {
                // Byte char literal b'x'.
                self.pos = i;
                self.char_or_lifetime();
                true
            }
            _ => false,
        }
    }

    fn string(&mut self) {
        let start = self.pos;
        self.pos += 1;
        self.cooked_string_tail();
        self.emit(TokenKind::Literal, start);
    }

    /// Consumes a cooked (escaped) string body up to and including the
    /// closing quote.
    fn cooked_string_tail(&mut self) {
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    self.pos += 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        // `'a` / `'static` are lifetimes unless followed by a closing quote
        // (`'a'` is a char). `'\n'` and friends are always chars.
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => self.peek(2) != Some(b'\''),
            _ => false,
        };
        if is_lifetime {
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
            self.emit(TokenKind::Lifetime, start);
            return;
        }
        // Char literal: skip escapes up to the closing quote.
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => break, // stray quote, bail
                _ => self.pos += 1,
            }
        }
        self.emit(TokenKind::Literal, start);
    }

    fn number(&mut self) {
        let start = self.pos;
        let mut float = false;
        if self.src[self.pos] == b'0' && matches!(self.peek(1), Some(b'x' | b'o' | b'b')) {
            self.pos += 2;
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.pos += 1;
            }
        } else {
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                self.pos += 1;
            }
            // Fractional part: a dot followed by a digit (so `x.0` tuple
            // access and `1..n` ranges stay integers).
            if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                self.pos += 1;
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                    self.pos += 1;
                }
            }
            // Exponent.
            if self.peek(0).is_some_and(|c| c == b'e' || c == b'E') {
                let mut j = 1;
                if self.peek(1).is_some_and(|c| c == b'+' || c == b'-') {
                    j = 2;
                }
                if self.peek(j).is_some_and(|c| c.is_ascii_digit()) {
                    float = true;
                    self.pos += j;
                    while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                        self.pos += 1;
                    }
                }
            }
            // Type suffix (`1.0f64`, `1u32`).
            if self.peek(0).is_some_and(|c| c.is_ascii_alphabetic()) {
                let suffix_start = self.pos;
                while self
                    .peek(0)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
                {
                    self.pos += 1;
                }
                let suffix = &self.src[suffix_start..self.pos];
                if suffix.starts_with(b"f32") || suffix.starts_with(b"f64") {
                    float = true;
                }
            }
        }
        self.emit(if float { TokenKind::Float } else { TokenKind::Int }, start);
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
        {
            self.pos += utf8_len(self.src[self.pos]);
        }
        self.emit(TokenKind::Ident, start);
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_do_not_produce_tokens() {
        let l = lex("// HashMap in a comment\nfn f() {} /* SystemTime */");
        assert!(!l.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("SystemTime")));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("HashMap"));
        assert!(!l.comments[0].trailing);
        assert!(l.comments[1].trailing);
    }

    #[test]
    fn nested_block_comments_close_properly() {
        let l = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(idents("/* a /* b */ c */ fn f() {}"), vec!["fn", "f"]);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn strings_hide_trigger_words() {
        assert!(!idents(r#"let s = "unwrap() HashMap";"#).contains(&"unwrap".to_string()));
        assert!(!idents(r##"let s = r#"panic!"#;"##).contains(&"panic".to_string()));
        assert!(!idents("let b = b\"expect(\";").contains(&"expect".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> =
            l.tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = l.tokens.iter().filter(|t| t.kind == TokenKind::Literal).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn float_classification() {
        let kinds: Vec<(String, TokenKind)> = lex("1.5 2e9 1.0f64 3f32 7 0xFF x.0 1..4")
            .tokens
            .into_iter()
            .map(|t| (t.text, t.kind))
            .collect();
        let kind_of = |s: &str| kinds.iter().find(|(t, _)| t == s).map(|(_, k)| *k);
        assert_eq!(kind_of("1.5"), Some(TokenKind::Float));
        assert_eq!(kind_of("2e9"), Some(TokenKind::Float));
        assert_eq!(kind_of("1.0f64"), Some(TokenKind::Float));
        assert_eq!(kind_of("3f32"), Some(TokenKind::Float));
        assert_eq!(kind_of("7"), Some(TokenKind::Int));
        assert_eq!(kind_of("0xFF"), Some(TokenKind::Int));
        // `x.0` lexes as ident, dot, integer — tuple access is not a float.
        assert_eq!(kind_of("0"), Some(TokenKind::Int));
        assert_eq!(kind_of("1"), Some(TokenKind::Int));
    }

    #[test]
    fn line_numbers_survive_multiline_forms() {
        let src = "let a = \"line\n1\";\nlet b = 2; /* c\nc2 */\nlet d = 4;";
        let l = lex(src);
        let d = l.tokens.iter().find(|t| t.is_ident("d")).expect("d");
        assert_eq!(d.line, 5);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r###"let s = r##"quote " and "# inside"## ; let t = 1;"###);
        assert!(l.tokens.iter().any(|t| t.is_ident("t")));
    }
}
