//! The analysis engine: applies every rule to one lexed file, honoring
//! `#[cfg(test)]` regions, `// mmr-lint: hot` function annotations, and
//! `// mmr-lint: allow(...)` escape hatches.

use crate::diag::{Diagnostic, Rule};
use crate::lexer::{lex, Comment, Token, TokenKind};
use crate::manifest::Manifest;

/// Parsed `mmr-lint: allow(RULE, reason="...")` annotation.
#[derive(Debug)]
struct Allow {
    rule: Rule,
    /// Source line the annotation suppresses diagnostics on.
    target_line: u32,
    /// Line the annotation itself sits on (for L-UNUSED reporting).
    own_line: u32,
    used: bool,
}

/// Half-open token-index range.
#[derive(Debug, Clone, Copy)]
struct Region {
    start: usize,
    end: usize,
}

impl Region {
    fn contains(&self, i: usize) -> bool {
        i >= self.start && i < self.end
    }
}

/// Lints one file. `path` is the workspace-relative `/`-separated path used
/// for designation lookups and in diagnostics.
pub fn check_file(path: &str, src: &str, manifest: &Manifest) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let tokens = &lexed.tokens;

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();
    let mut hot_lines: Vec<u32> = Vec::new();

    // Pass 1: interpret annotation comments.
    for c in &lexed.comments {
        parse_annotations(c, tokens, &mut allows, &mut hot_lines, &mut diags, path);
    }

    let test_regions = find_test_regions(tokens);
    let hot_regions = find_hot_regions(tokens, &hot_lines);
    let in_test = |i: usize| test_regions.iter().any(|r| r.contains(i));
    let in_hot = |i: usize| hot_regions.iter().any(|r| r.contains(i));

    // Pass 2: token-pattern rules.
    let panic_free = manifest.is_panic_free(path);
    let index_free = manifest.is_index_free(path);
    let accounting = manifest.is_accounting(path);
    let time_exempt = manifest.is_time_exempt(path);

    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut push = |line: u32, rule: Rule, message: String| {
        raw.push(Diagnostic { file: path.to_string(), line, rule, message });
    };

    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident && !(t.kind == TokenKind::Float && accounting) {
            // The only non-ident trigger besides floats is `[` (P-INDEX).
            if index_free && !in_test(i) && t.is_punct('[') && is_index_expr(tokens, i) {
                push(t.line, Rule::PIndex, "bare slice indexing; use get()/get_mut()".into());
            }
            continue;
        }
        if in_test(i) {
            continue;
        }
        let next = tokens.get(i + 1);
        let prev = i.checked_sub(1).and_then(|j| tokens.get(j));

        // --- D-lints -----------------------------------------------------
        if t.kind == TokenKind::Float && accounting {
            push(
                t.line,
                Rule::DFloat,
                format!("float literal `{}` in integer-ledger accounting module", t.text),
            );
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" => {
                push(t.line, Rule::DHash, format!("use of `{}` (nondeterministic iteration order)", t.text));
            }
            "SystemTime" | "Instant" if !time_exempt => {
                push(t.line, Rule::DTime, format!("use of `std::time::{}` in simulation code", t.text));
            }
            "time" if !time_exempt && is_path_seg(tokens, i, "std") && !next_seg_is(tokens, i, "Duration") => {
                push(t.line, Rule::DTime, "use of `std::time` in simulation code".into());
            }
            "from_entropy" | "thread_rng" | "ThreadRng" | "OsRng" | "getrandom" => {
                push(
                    t.line,
                    Rule::DRng,
                    format!("seed-free RNG construction `{}`; derive seeds via point_seed", t.text),
                );
            }
            "f32" | "f64" if accounting && !is_cast_suffix_context(tokens, i) => {
                push(t.line, Rule::DFloat, format!("`{}` type in integer-ledger accounting module", t.text));
            }
            _ => {}
        }

        // --- P-lints -----------------------------------------------------
        if panic_free {
            let is_call = next.is_some_and(|n| n.is_punct('('));
            let after_dot = prev.is_some_and(|p| p.is_punct('.'));
            match t.text.as_str() {
                "unwrap" if after_dot && is_call => {
                    push(t.line, Rule::PUnwrap, "call to `.unwrap()` in panic-free module".into());
                }
                "expect" if after_dot && is_call => {
                    push(t.line, Rule::PExpect, "call to `.expect(..)` in panic-free module".into());
                }
                "panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq"
                | "assert_ne"
                    if next.is_some_and(|n| n.is_punct('!')) && !after_dot =>
                {
                    push(t.line, Rule::PPanic, format!("`{}!` in panic-free module", t.text));
                }
                _ => {}
            }
        }

        // --- A-lints -----------------------------------------------------
        if in_hot(i) {
            let is_call = next.is_some_and(|n| n.is_punct('('));
            let after_dot = prev.is_some_and(|p| p.is_punct('.'));
            let is_macro = next.is_some_and(|n| n.is_punct('!'));
            match t.text.as_str() {
                "new" | "from" | "with_capacity"
                    if is_call && is_alloc_type_path(tokens, i) =>
                {
                    let ty = tokens[i - 2].text.clone();
                    push(t.line, Rule::AAlloc, format!("`{}::{}(..)` allocates in hot function", ty, t.text));
                }
                "to_vec" | "to_string" | "to_owned" | "collect" | "with_capacity"
                    if is_call && after_dot =>
                {
                    push(t.line, Rule::AAlloc, format!("`.{}()` allocates in hot function", t.text));
                }
                "format" | "vec" if is_macro => {
                    push(t.line, Rule::AAlloc, format!("`{}!` allocates in hot function", t.text));
                }
                "push" | "push_back" | "push_front" | "insert" | "extend" | "resize"
                | "append"
                    if is_call && after_dot =>
                {
                    push(
                        t.line,
                        Rule::APush,
                        format!("`.{}(..)` may grow/reallocate in hot function", t.text),
                    );
                }
                _ => {}
            }
        }
    }

    // Pass 3: apply allow-annotations; leftover allows become L-UNUSED.
    for d in raw {
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if a.rule == d.rule && a.target_line == d.line {
                a.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            diags.push(d);
        }
    }
    for a in &allows {
        if !a.used {
            diags.push(Diagnostic {
                file: path.to_string(),
                line: a.own_line,
                rule: Rule::LUnused,
                message: format!("allow({}) suppressed no diagnostic; remove it", a.rule.id()),
            });
        }
    }

    diags.sort();
    diags
}

/// Parses `mmr-lint:` annotations out of one comment. Malformed annotations
/// become L-REASON diagnostics immediately.
fn parse_annotations(
    c: &Comment,
    tokens: &[Token],
    allows: &mut Vec<Allow>,
    hot_lines: &mut Vec<u32>,
    diags: &mut Vec<Diagnostic>,
    path: &str,
) {
    // Only comments that BEGIN with the marker are annotations; prose that
    // mentions `mmr-lint:` mid-sentence (docs, this linter's own source) is
    // not. The grammar is documented in DESIGN.md §7.
    let Some(rest) = c.text.strip_prefix("mmr-lint:") else { return };
    let body = rest.trim();
    if body == "hot" || body.starts_with("hot ") {
        // Marks the next `fn` (same line for trailing comments).
        hot_lines.push(c.line);
        return;
    }
    if let Some(rest) = body.strip_prefix("allow") {
        match parse_allow(rest.trim()) {
            Ok(rule) => {
                let target_line = if c.trailing {
                    c.line
                } else {
                    // Standalone comment: covers the next line holding code.
                    tokens
                        .iter()
                        .map(|t| t.line)
                        .find(|&l| l > c.line)
                        .unwrap_or(c.line)
                };
                allows.push(Allow { rule, target_line, own_line: c.line, used: false });
            }
            Err(why) => diags.push(Diagnostic {
                file: path.to_string(),
                line: c.line,
                rule: Rule::LReason,
                message: why,
            }),
        }
    } else {
        diags.push(Diagnostic {
            file: path.to_string(),
            line: c.line,
            rule: Rule::LReason,
            message: format!("unrecognized mmr-lint annotation `{body}`; expected `hot` or `allow(RULE, reason=\"...\")`"),
        });
    }
}

/// Parses `(RULE-ID, reason="non-empty")`. Returns the rule or a message
/// explaining the malformation.
fn parse_allow(s: &str) -> Result<Rule, String> {
    let inner = s
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| "allow annotation must be `allow(RULE, reason=\"...\")`".to_string())?;
    let (rule_part, reason_part) = inner
        .split_once(',')
        .ok_or_else(|| "allow annotation missing `, reason=\"...\"`".to_string())?;
    let rule = Rule::from_id(rule_part.trim())
        .ok_or_else(|| format!("unknown rule `{}` in allow annotation", rule_part.trim()))?;
    let reason = reason_part
        .trim()
        .strip_prefix("reason=")
        .ok_or_else(|| "allow annotation missing `reason=` key".to_string())?
        .trim();
    let quoted = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| "allow reason must be a quoted string".to_string())?;
    if quoted.trim().is_empty() {
        return Err("allow reason must be non-empty".to_string());
    }
    Ok(rule)
}

/// Finds token regions covered by `#[cfg(test)]` / `#[test]` attributes:
/// the attribute plus the item it annotates (brace-matched, or up to `;`
/// for brace-less items).
fn find_test_regions(tokens: &[Token]) -> Vec<Region> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Scan the attribute body for `test` / `cfg(..test..)`.
            let mut j = i + 2;
            let mut depth = 1u32;
            let mut is_test_attr = false;
            while j < tokens.len() && depth > 0 {
                let t = &tokens[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                } else if t.is_ident("test") || t.is_ident("tests") {
                    is_test_attr = true;
                }
                j += 1;
            }
            if is_test_attr {
                // Skip any further attributes, then the item itself.
                let mut k = j;
                while k < tokens.len()
                    && tokens[k].is_punct('#')
                    && tokens.get(k + 1).is_some_and(|t| t.is_punct('['))
                {
                    let mut d = 1u32;
                    k += 2;
                    while k < tokens.len() && d > 0 {
                        if tokens[k].is_punct('[') {
                            d += 1;
                        } else if tokens[k].is_punct(']') {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                let end = skip_item(tokens, k);
                regions.push(Region { start: i, end });
                i = end;
                continue;
            }
        }
        i += 1;
    }
    regions
}

/// Given the first token of an item, returns the index one past its end:
/// past the matching `}` of its first brace at depth 0, or past the first
/// top-level `;` for brace-less items (`use`, `type`, …).
fn skip_item(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    let mut paren = 0i32;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct(';') && paren <= 0 {
            return i + 1;
        } else if t.is_punct('{') && paren <= 0 {
            let mut depth = 1i32;
            i += 1;
            while i < tokens.len() && depth > 0 {
                if tokens[i].is_punct('{') {
                    depth += 1;
                } else if tokens[i].is_punct('}') {
                    depth -= 1;
                }
                i += 1;
            }
            return i;
        }
        i += 1;
    }
    i
}

/// Finds body regions of functions marked with `// mmr-lint: hot`: for each
/// annotation line, the next `fn` token at or after it, then its
/// brace-matched body.
fn find_hot_regions(tokens: &[Token], hot_lines: &[u32]) -> Vec<Region> {
    let mut regions = Vec::new();
    for &line in hot_lines {
        let Some(fn_idx) = tokens
            .iter()
            .position(|t| t.is_ident("fn") && t.line >= line)
        else {
            continue;
        };
        let end = skip_item(tokens, fn_idx);
        regions.push(Region { start: fn_idx, end });
    }
    regions
}

/// Whether the `[` at index `i` opens an index expression: the previous
/// significant token is an identifier, `)`, or `]` (a value), not a type or
/// attribute position.
fn is_index_expr(tokens: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|j| tokens.get(j)) else { return false };
    match prev.kind {
        TokenKind::Ident => !matches!(
            prev.text.as_str(),
            // Keyword before `[` means array/slice literal position.
            "return" | "in" | "if" | "while" | "match" | "else" | "mut" | "ref" | "as" | "dyn"
        ),
        TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
        _ => false,
    }
}

/// Whether token `i` (`new`/`from`/`with_capacity`) completes an allocating
/// `Type::ctor` path: tokens `i-2`/`i-1` are an allocating type name and
/// `::`.
fn is_alloc_type_path(tokens: &[Token], i: usize) -> bool {
    let Some(colons) = i.checked_sub(1).and_then(|j| tokens.get(j)) else { return false };
    let Some(ty) = i.checked_sub(2).and_then(|j| tokens.get(j)) else { return false };
    colons.text == "::"
        && matches!(
            ty.text.as_str(),
            "Vec" | "VecDeque" | "Box" | "String" | "BTreeMap" | "BTreeSet" | "HashMap"
                | "HashSet" | "Rc" | "Arc"
        )
}

/// Whether the `std` two tokens back makes `t` part of a `std::time` path.
fn is_path_seg(tokens: &[Token], i: usize, root: &str) -> bool {
    i >= 2 && tokens[i - 1].text == "::" && tokens[i - 2].is_ident(root)
}

/// Whether the path continues `::<seg>` after token `i`.
fn next_seg_is(tokens: &[Token], i: usize, seg: &str) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.text == "::")
        && tokens.get(i + 2).is_some_and(|t| t.is_ident(seg))
}

/// Whether an `f32`/`f64` ident is an `as` cast target or generic turbofish
/// used for *display-only* conversion — still flagged in accounting modules;
/// this hook exists so the policy is explicit and testable. Currently only
/// exempts `size_of::<f64>()`-style metadata queries.
fn is_cast_suffix_context(tokens: &[Token], i: usize) -> bool {
    // `size_of::<f64>` / `align_of::<f64>`
    i >= 3
        && tokens[i - 1].text == "<"
        && tokens[i - 2].text == "::"
        && tokens
            .get(i - 3)
            .is_some_and(|t| t.is_ident("size_of") || t.is_ident("align_of"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest_all(path: &str) -> Manifest {
        Manifest::parse(&format!(
            "[panic_free]\nmodules = [\"{path}\"]\n[index_free]\nmodules = [\"{path}\"]\n[accounting]\nmodules = [\"{path}\"]\n"
        ))
        .expect("manifest parses")
    }

    fn run(src: &str) -> Vec<String> {
        let m = manifest_all("a.rs");
        check_file("a.rs", src, &m).iter().map(|d| d.render()).collect()
    }

    #[test]
    fn unwrap_flagged_only_outside_tests() {
        let out = run("fn f(x: Option<u8>) -> u8 { x.unwrap() }\n#[cfg(test)]\nmod t { fn g(x: Option<u8>) { x.unwrap(); } }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("P-UNWRAP"));
        assert!(out[0].starts_with("a.rs:1:"));
    }

    #[test]
    fn unwrap_or_not_flagged() {
        assert!(run("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }").is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let out = run("fn f(x: Option<u8>) -> u8 { x.unwrap() } // mmr-lint: allow(P-UNWRAP, reason=\"test scaffold\")");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn standalone_allow_covers_next_line() {
        let out = run("// mmr-lint: allow(P-UNWRAP, reason=\"demo\")\nfn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn allow_without_reason_is_l_reason() {
        let out = run("fn f(x: Option<u8>) -> u8 { x.unwrap() } // mmr-lint: allow(P-UNWRAP)");
        assert!(out.iter().any(|d| d.contains("L-REASON")), "{out:?}");
        assert!(out.iter().any(|d| d.contains("P-UNWRAP")), "{out:?}");
    }

    #[test]
    fn stale_allow_is_l_unused() {
        let out = run("fn f() {} // mmr-lint: allow(P-UNWRAP, reason=\"gone\")");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("L-UNUSED"));
    }

    #[test]
    fn hot_function_allocation_flagged() {
        let src = "// mmr-lint: hot\nfn step(&mut self) { let v = Vec::new(); self.buf.push(1); }\nfn cold(&mut self) { let v = Vec::new(); }";
        let out = run(src);
        assert!(out.iter().any(|d| d.contains("A-ALLOC") && d.contains(":2:")), "{out:?}");
        assert!(out.iter().any(|d| d.contains("A-PUSH") && d.contains(":2:")), "{out:?}");
        assert!(!out.iter().any(|d| d.contains(":3:")), "{out:?}");
    }

    #[test]
    fn indexing_heuristic() {
        let out = run("fn f(xs: &[u8], i: usize) -> u8 { xs[i] }");
        assert!(out.iter().any(|d| d.contains("P-INDEX")), "{out:?}");
        // Attribute and array-type brackets are not index expressions.
        let out = run("#[derive(Clone)]\nstruct S { a: [u8; 4] }");
        assert!(!out.iter().any(|d| d.contains("P-INDEX")), "{out:?}");
    }

    #[test]
    fn float_in_accounting() {
        let out = run("fn f() -> f64 { 1.5 }");
        assert!(out.iter().any(|d| d.contains("D-FLOAT") && d.contains("f64")), "{out:?}");
        assert!(out.iter().any(|d| d.contains("D-FLOAT") && d.contains("1.5")), "{out:?}");
    }

    #[test]
    fn hash_and_time_and_rng() {
        let out = run("use std::collections::HashMap;\nfn f() { let t = std::time::Instant::now(); }\nfn g() { let r = thread_rng(); }");
        assert!(out.iter().any(|d| d.contains("D-HASH")), "{out:?}");
        assert!(out.iter().any(|d| d.contains("D-TIME")), "{out:?}");
        assert!(out.iter().any(|d| d.contains("D-RNG")), "{out:?}");
    }

    #[test]
    fn duration_alone_is_not_flagged() {
        let out = run("use std::time::Duration;\nfn f(d: Duration) {}");
        assert!(!out.iter().any(|d| d.contains("D-TIME")), "{out:?}");
    }

    #[test]
    fn debug_assert_is_fine_but_assert_is_not() {
        let out = run("fn f(x: u8) { debug_assert!(x > 0); assert!(x > 0); }");
        let panics: Vec<_> = out.iter().filter(|d| d.contains("P-PANIC")).collect();
        assert_eq!(panics.len(), 1, "{out:?}");
    }

    #[test]
    fn trigger_words_in_strings_and_comments_ignored() {
        let out = run("// HashMap unwrap panic!\nfn f() { let s = \"Instant::now() .unwrap()\"; }");
        assert!(out.is_empty(), "{out:?}");
    }
}
