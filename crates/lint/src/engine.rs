//! The analysis engine. Per file: annotation comments, `#[cfg(test)]`
//! regions, and the direct token-pattern rules. Per workspace: the call
//! graph over every analyzed file and the interprocedural rule families
//! (A-TRANS, P-TRANS, S-SHARD chains), then allow-application and
//! L-UNUSED reporting in one global pass — an allow on a leaf line can be
//! "used" by a call chain rooted in another file.

use std::collections::BTreeMap;

use crate::diag::{Diagnostic, Rule};
use crate::graph::{self, LeafKind, Site};
use crate::lexer::{lex, Comment, Token, TokenKind};
use crate::manifest::Manifest;
use crate::parse::{self, FnItem, Region};

/// Parsed `mmr-lint: allow(RULE, reason="...")` annotation.
#[derive(Debug)]
pub(crate) struct Allow {
    rule: Rule,
    /// Source line the annotation suppresses diagnostics on.
    target_line: u32,
    /// Line the annotation itself sits on (for L-UNUSED reporting).
    own_line: u32,
    used: bool,
}

/// One file's analysis, before the workspace-level pass.
pub(crate) struct FileAnalysis {
    path: String,
    /// Direct-rule findings, pre-allow-application.
    raw: Vec<Diagnostic>,
    /// Findings that no allow can suppress (L-REASON).
    fixed: Vec<Diagnostic>,
    allows: Vec<Allow>,
    fns: Vec<FnItem>,
    sites: Vec<Vec<Site>>,
    /// Struct field types declared in this file, for receiver resolution.
    fields: Vec<(String, String, String)>,
}

/// Lints one file in isolation (a one-file workspace: interprocedural
/// rules still run over chains inside the file). `path` is the
/// workspace-relative `/`-separated path used for designation lookups.
pub fn check_file(path: &str, src: &str, manifest: &Manifest) -> Vec<Diagnostic> {
    finalize(vec![analyze_file(path, src, manifest)], manifest).0
}

/// Runs annotation parsing, item parsing, site collection, and every
/// direct (single-site) rule over one file.
pub(crate) fn analyze_file(path: &str, src: &str, manifest: &Manifest) -> FileAnalysis {
    let lexed = lex(src);
    let tokens = &lexed.tokens;

    let mut fixed: Vec<Diagnostic> = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();
    let mut hot_lines: Vec<u32> = Vec::new();

    // Pass 1: interpret annotation comments.
    for c in &lexed.comments {
        parse_annotations(c, tokens, &mut allows, &mut hot_lines, &mut fixed, path);
    }

    let test_regions = parse::find_test_regions(tokens);
    let fns = parse::parse_items(tokens, &hot_lines, &test_regions);
    let sites = graph::collect_sites(tokens, &fns);
    let hot_regions: Vec<Region> =
        fns.iter().filter(|f| f.hot).filter_map(|f| f.body).collect();
    let in_test = |i: usize| test_regions.iter().any(|r| r.contains(i));
    let in_hot = |i: usize| hot_regions.iter().any(|r| r.contains(i));

    // Pass 2: direct token-pattern rules.
    let panic_free = manifest.is_panic_free(path);
    let index_free = manifest.is_index_free(path);
    let accounting = manifest.is_accounting(path);
    let time_exempt = manifest.is_time_exempt(path);
    let iter_strict = manifest.is_iter_strict(path);
    let shard_safe = manifest.is_shard_safe(path);
    let bindings = if iter_strict { hashy_bindings(tokens) } else { Vec::new() };
    // A use is hashy only where its binding is visible: in the same fn
    // (params included) or bound at file scope (struct fields, statics).
    // This keeps a BTree collection reusing a hashy name in another fn clean.
    let fn_span_of = |idx: usize| {
        fns.iter()
            .find(|f| f.body.is_some_and(|b| f.start <= idx && idx <= b.end))
            .map(|f| f.start)
    };
    let is_hashy = |name: &str, use_idx: usize| {
        bindings.iter().any(|(n, bi)| {
            n == name
                && match fn_span_of(*bi) {
                    Some(span) => fn_span_of(use_idx) == Some(span),
                    None => true,
                }
        })
    };

    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut push = |line: u32, rule: Rule, message: String| {
        raw.push(Diagnostic::new(path, line, rule, message));
    };

    for (i, t) in tokens.iter().enumerate() {
        if in_test(i) {
            continue;
        }
        let next = tokens.get(i + 1);
        let prev = i.checked_sub(1).and_then(|j| tokens.get(j));

        if t.kind == TokenKind::Float {
            if accounting {
                push(
                    t.line,
                    Rule::DFloat,
                    format!("float literal `{}` in integer-ledger accounting module", t.text),
                );
            }
            continue;
        }
        if t.kind != TokenKind::Ident {
            if index_free && t.is_punct('[') && is_index_expr(tokens, i) {
                push(t.line, Rule::PIndex, "bare slice indexing; use get()/get_mut()".into());
            }
            if shard_safe
                && t.is_punct('*')
                && next.is_some_and(|n| n.is_ident("const") || n.is_ident("mut"))
                && tokens.get(i + 2).is_some_and(|n| n.kind == TokenKind::Ident)
            {
                push(
                    t.line,
                    Rule::SShard,
                    "raw-pointer type in shard-safe module; use references or indices".into(),
                );
            }
            continue;
        }

        // --- D-lints -----------------------------------------------------
        match t.text.as_str() {
            "HashMap" | "HashSet" => {
                push(t.line, Rule::DHash, format!("use of `{}` (nondeterministic iteration order)", t.text));
            }
            "SystemTime" | "Instant" if !time_exempt => {
                push(t.line, Rule::DTime, format!("use of `std::time::{}` in simulation code", t.text));
            }
            "time" if !time_exempt && is_path_seg(tokens, i, "std") && !next_seg_is(tokens, i, "Duration") => {
                push(t.line, Rule::DTime, "use of `std::time` in simulation code".into());
            }
            "from_entropy" | "thread_rng" | "ThreadRng" | "OsRng" | "getrandom" => {
                push(
                    t.line,
                    Rule::DRng,
                    format!("seed-free RNG construction `{}`; derive seeds via point_seed", t.text),
                );
            }
            "f32" | "f64" if accounting && !is_cast_suffix_context(tokens, i) => {
                push(t.line, Rule::DFloat, format!("`{}` type in integer-ledger accounting module", t.text));
            }
            _ => {}
        }

        // --- D-ITER: hash-order iteration in order-strict crates ---------
        if iter_strict {
            let is_call = next.is_some_and(|n| n.is_punct('('));
            let after_dot = prev.is_some_and(|p| p.is_punct('.'));
            if is_call
                && after_dot
                && matches!(
                    t.text.as_str(),
                    "iter" | "iter_mut" | "keys" | "values" | "values_mut" | "drain"
                        | "into_iter" | "into_keys" | "into_values"
                )
                && i >= 2
                && is_hashy(&tokens[i - 2].text, i)
            {
                push(
                    t.line,
                    Rule::DIter,
                    format!(
                        "hash-order iteration `.{}()` over `{}`; use a BTree collection or collect-and-sort first",
                        t.text,
                        tokens[i - 2].text
                    ),
                );
            }
            if t.is_ident("for") && !next.is_some_and(|n| n.is_punct('<')) {
                if let Some(name) = for_loop_hashy_source(tokens, i, &is_hashy) {
                    push(
                        t.line,
                        Rule::DIter,
                        format!("hash-order iteration over `{name}` in for loop; use a BTree collection or collect-and-sort first"),
                    );
                }
            }
        }

        // --- S-SHARD: shard-unsafe constructs ----------------------------
        if shard_safe {
            match t.text.as_str() {
                "Rc" | "RefCell" | "Cell" | "UnsafeCell" => {
                    push(
                        t.line,
                        Rule::SShard,
                        format!("`{}` (unsynchronized shared mutability) in shard-safe module", t.text),
                    );
                }
                "static" if next.is_some_and(|n| n.is_ident("mut")) => {
                    push(t.line, Rule::SShard, "`static mut` (mutable global) in shard-safe module".into());
                }
                "thread_local" if next.is_some_and(|n| n.is_punct('!')) => {
                    push(t.line, Rule::SShard, "`thread_local!` (per-thread state) in shard-safe module".into());
                }
                _ => {}
            }
        }

        // --- P-lints -----------------------------------------------------
        if panic_free {
            let is_call = next.is_some_and(|n| n.is_punct('('));
            let after_dot = prev.is_some_and(|p| p.is_punct('.'));
            match t.text.as_str() {
                "unwrap" if after_dot && is_call => {
                    push(t.line, Rule::PUnwrap, "call to `.unwrap()` in panic-free module".into());
                }
                "expect" if after_dot && is_call => {
                    push(t.line, Rule::PExpect, "call to `.expect(..)` in panic-free module".into());
                }
                "panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq"
                | "assert_ne"
                    if next.is_some_and(|n| n.is_punct('!')) && !after_dot =>
                {
                    push(t.line, Rule::PPanic, format!("`{}!` in panic-free module", t.text));
                }
                _ => {}
            }
        }

        // --- A-lints -----------------------------------------------------
        if in_hot(i) {
            let is_call = next.is_some_and(|n| n.is_punct('('));
            let after_dot = prev.is_some_and(|p| p.is_punct('.'));
            let is_macro = next.is_some_and(|n| n.is_punct('!'));
            match t.text.as_str() {
                "new" | "from" | "with_capacity"
                    if is_call && is_alloc_type_path(tokens, i) =>
                {
                    let ty = tokens[i - 2].text.clone();
                    push(t.line, Rule::AAlloc, format!("`{}::{}(..)` allocates in hot function", ty, t.text));
                }
                "to_vec" | "to_string" | "to_owned" | "collect" | "with_capacity"
                    if is_call && after_dot =>
                {
                    push(t.line, Rule::AAlloc, format!("`.{}()` allocates in hot function", t.text));
                }
                "format" | "vec" if is_macro => {
                    push(t.line, Rule::AAlloc, format!("`{}!` allocates in hot function", t.text));
                }
                "push" | "push_back" | "push_front" | "insert" | "extend" | "resize"
                | "append"
                    if is_call && after_dot =>
                {
                    push(
                        t.line,
                        Rule::APush,
                        format!("`.{}(..)` may grow/reallocate in hot function", t.text),
                    );
                }
                _ => {}
            }
        }
    }

    let fields = parse::parse_fields(tokens);
    FileAnalysis { path: path.to_string(), raw, fixed, allows, fns, sites, fields }
}

/// The workspace-level pass: builds the call graph over every analyzed
/// file, runs the interprocedural rules, applies allow-annotations
/// globally, and reports leftover allows as L-UNUSED.
pub(crate) fn finalize(
    files: Vec<FileAnalysis>,
    manifest: &Manifest,
) -> (Vec<Diagnostic>, graph::Graph) {
    let mut paths: Vec<String> = Vec::new();
    let mut raws: Vec<Vec<Diagnostic>> = Vec::new();
    let mut allows_by_file: Vec<Vec<Allow>> = Vec::new();
    let mut out: Vec<Diagnostic> = Vec::new();
    let mut per_file = Vec::new();
    let mut fields: BTreeMap<(String, String), String> = BTreeMap::new();
    for f in files {
        paths.push(f.path.clone());
        raws.push(f.raw);
        out.extend(f.fixed);
        allows_by_file.push(f.allows);
        for (s, name, ty) in f.fields {
            fields.insert((s, name), ty);
        }
        per_file.push((f.path, f.fns, f.sites));
    }
    let g = graph::build(per_file, &fields);

    // Interprocedural rules. "Covered" callees — those carrying the same
    // obligation as the root — are never descended into: their own direct
    // rules (or their own chains) report their problems exactly once.
    let mut trans: Vec<Diagnostic> = Vec::new();
    {
        let roots: Vec<usize> = (0..g.nodes.len()).filter(|&n| g.nodes[n].hot).collect();
        let covered = |n: usize| g.nodes[n].hot;
        let mut exempt = |n: usize, s: &Site| {
            mark_allow(&mut allows_by_file[g.nodes[n].file], s.line, &[s.direct, Rule::ATrans])
        };
        trans.extend(graph::transitive_diags(
            &g, &roots, &covered, LeafKind::Alloc, Rule::ATrans, "hot fn", &mut exempt,
        ));
    }
    {
        let pf: Vec<bool> =
            g.nodes.iter().map(|n| manifest.is_panic_free(&g.files[n.file])).collect();
        let roots: Vec<usize> = (0..g.nodes.len()).filter(|&n| pf[n]).collect();
        let covered = |n: usize| pf[n];
        let mut exempt = |n: usize, s: &Site| {
            mark_allow(&mut allows_by_file[g.nodes[n].file], s.line, &[s.direct, Rule::PTrans])
        };
        trans.extend(graph::transitive_diags(
            &g, &roots, &covered, LeafKind::Panic, Rule::PTrans, "panic-free fn", &mut exempt,
        ));
    }
    {
        let ss: Vec<bool> =
            g.nodes.iter().map(|n| manifest.is_shard_safe(&g.files[n.file])).collect();
        let roots: Vec<usize> = (0..g.nodes.len()).filter(|&n| ss[n]).collect();
        let covered = |n: usize| ss[n];
        let mut exempt = |n: usize, s: &Site| {
            mark_allow(&mut allows_by_file[g.nodes[n].file], s.line, &[s.direct])
        };
        trans.extend(graph::transitive_diags(
            &g, &roots, &covered, LeafKind::Shard, Rule::SShard, "shard-safe fn", &mut exempt,
        ));
    }

    // Apply allow-annotations: direct findings against their own file's
    // allows, chain findings against the root call-site line.
    let idx_of: BTreeMap<String, usize> =
        paths.iter().enumerate().map(|(i, p)| (p.clone(), i)).collect();
    for (i, raw) in raws.into_iter().enumerate() {
        for d in raw {
            if !mark_allow(&mut allows_by_file[i], d.line, &[d.rule]) {
                out.push(d);
            }
        }
    }
    for d in trans {
        let i = idx_of[&d.file];
        if !mark_allow(&mut allows_by_file[i], d.line, &[d.rule]) {
            out.push(d);
        }
    }
    for (i, allows) in allows_by_file.iter().enumerate() {
        for a in allows {
            if !a.used {
                out.push(Diagnostic::new(
                    &paths[i],
                    a.own_line,
                    Rule::LUnused,
                    format!("allow({}) suppressed no diagnostic; remove it", a.rule.id()),
                ));
            }
        }
    }
    out.sort();
    (out, g)
}

/// Marks every allow targeting `line` with a rule in `rules` as used;
/// returns whether any matched.
fn mark_allow(allows: &mut [Allow], line: u32, rules: &[Rule]) -> bool {
    let mut any = false;
    for a in allows.iter_mut() {
        if a.target_line == line && rules.contains(&a.rule) {
            a.used = true;
            any = true;
        }
    }
    any
}

/// Collects binding sites of identifiers bound to `HashMap`/`HashSet`
/// values in this file — `name: HashMap<..>` annotations (lets, params,
/// struct fields) and `name = HashMap::new()`-style initializers — as
/// `(name, binding token index)` pairs. Still over-approximate by name
/// within a scope: shadowing inside one fn counts as hashy.
fn hashy_bindings(tokens: &[Token]) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // `name = HashMap::new()` / `name = HashSet::from(..)`
        if i >= 2 && tokens[i - 1].is_punct('=') && tokens[i - 2].kind == TokenKind::Ident {
            out.push((tokens[i - 2].text.clone(), i - 2));
            continue;
        }
        // `name: [&mut] [std::collections::] HashMap<..>`
        let mut j = i;
        for _ in 0..8 {
            let Some(prev) = j.checked_sub(1) else { break };
            j = prev;
            let p = &tokens[j];
            if p.is_punct(':') {
                if let Some(k) = j.checked_sub(1) {
                    if tokens[k].kind == TokenKind::Ident {
                        out.push((tokens[k].text.clone(), k));
                    }
                }
                break;
            }
            let continues = p.text == "::"
                || p.is_punct('&')
                || p.is_punct('<')
                || p.is_ident("mut")
                || p.is_ident("std")
                || p.is_ident("collections")
                || p.is_ident("dyn");
            if !continues {
                break;
            }
        }
    }
    out
}

/// For a `for` keyword at `i`, returns the hashy identifier the loop
/// iterates over, if any: scans `for <pat> in <expr> {` and checks the
/// expression's identifiers. Identifiers followed by `.` are left to the
/// method-call check (e.g. `map.iter()`), so each loop is flagged once.
fn for_loop_hashy_source(
    tokens: &[Token],
    i: usize,
    is_hashy: &dyn Fn(&str, usize) -> bool,
) -> Option<String> {
    // Find the `in` at pattern depth 0 (an `impl Trait for Type` has none
    // before its `{`, so it never matches).
    let mut j = i + 1;
    let mut depth = 0i32;
    let mut in_idx = None;
    while j < tokens.len() && j < i + 40 {
        let p = &tokens[j];
        if p.is_punct('(') || p.is_punct('[') {
            depth += 1;
        } else if p.is_punct(')') || p.is_punct(']') {
            depth -= 1;
        } else if p.is_ident("in") && depth <= 0 {
            in_idx = Some(j);
            break;
        } else if p.is_punct('{') || p.is_punct(';') {
            break;
        }
        j += 1;
    }
    let mut j = in_idx? + 1;
    let mut depth = 0i32;
    while j < tokens.len() {
        let p = &tokens[j];
        if p.is_punct('(') || p.is_punct('[') {
            depth += 1;
        } else if p.is_punct(')') || p.is_punct(']') {
            depth -= 1;
        } else if p.is_punct('{') && depth <= 0 {
            break;
        } else if p.kind == TokenKind::Ident
            && is_hashy(&p.text, j)
            && !tokens.get(j + 1).is_some_and(|n| n.is_punct('.'))
        {
            return Some(p.text.clone());
        }
        j += 1;
    }
    None
}

/// Parses `mmr-lint:` annotations out of one comment. Malformed annotations
/// become L-REASON diagnostics immediately.
fn parse_annotations(
    c: &Comment,
    tokens: &[Token],
    allows: &mut Vec<Allow>,
    hot_lines: &mut Vec<u32>,
    diags: &mut Vec<Diagnostic>,
    path: &str,
) {
    // Only comments that BEGIN with the marker are annotations; prose that
    // mentions `mmr-lint:` mid-sentence (docs, this linter's own source) is
    // not. The grammar is documented in DESIGN.md §7.
    let Some(rest) = c.text.strip_prefix("mmr-lint:") else { return };
    let body = rest.trim();
    if body == "hot" || body.starts_with("hot ") {
        // Marks the next `fn` (same line for trailing comments).
        hot_lines.push(c.line);
        return;
    }
    if let Some(rest) = body.strip_prefix("allow") {
        match parse_allow(rest.trim()) {
            Ok(rule) => {
                let target_line = if c.trailing {
                    c.line
                } else {
                    // Standalone comment: covers the next line holding code.
                    tokens
                        .iter()
                        .map(|t| t.line)
                        .find(|&l| l > c.line)
                        .unwrap_or(c.line)
                };
                allows.push(Allow { rule, target_line, own_line: c.line, used: false });
            }
            Err(why) => diags.push(Diagnostic::new(path, c.line, Rule::LReason, why)),
        }
    } else {
        diags.push(Diagnostic::new(
            path,
            c.line,
            Rule::LReason,
            format!("unrecognized mmr-lint annotation `{body}`; expected `hot` or `allow(RULE, reason=\"...\")`"),
        ));
    }
}

/// Parses `(RULE-ID, reason="non-empty")`. Returns the rule or a message
/// explaining the malformation.
fn parse_allow(s: &str) -> Result<Rule, String> {
    let inner = s
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| "allow annotation must be `allow(RULE, reason=\"...\")`".to_string())?;
    let (rule_part, reason_part) = inner
        .split_once(',')
        .ok_or_else(|| "allow annotation missing `, reason=\"...\"`".to_string())?;
    let rule = Rule::from_id(rule_part.trim())
        .ok_or_else(|| format!("unknown rule `{}` in allow annotation", rule_part.trim()))?;
    let reason = reason_part
        .trim()
        .strip_prefix("reason=")
        .ok_or_else(|| "allow annotation missing `reason=` key".to_string())?
        .trim();
    let quoted = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| "allow reason must be a quoted string".to_string())?;
    if quoted.trim().is_empty() {
        return Err("allow reason must be non-empty".to_string());
    }
    Ok(rule)
}

/// Whether the `[` at index `i` opens an index expression: the previous
/// significant token is an identifier, `)`, or `]` (a value), not a type or
/// attribute position.
pub(crate) fn is_index_expr(tokens: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|j| tokens.get(j)) else { return false };
    match prev.kind {
        TokenKind::Ident => !matches!(
            prev.text.as_str(),
            // Keyword before `[` means array/slice literal or pattern
            // position (`let [a, b] = ...` destructures, it does not index).
            "return" | "in" | "if" | "while" | "match" | "else" | "mut" | "ref" | "as" | "dyn"
                | "let"
        ),
        TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
        _ => false,
    }
}

/// Whether token `i` (`new`/`from`/`with_capacity`) completes an allocating
/// `Type::ctor` path: tokens `i-2`/`i-1` are an allocating type name and
/// `::`.
pub(crate) fn is_alloc_type_path(tokens: &[Token], i: usize) -> bool {
    let Some(colons) = i.checked_sub(1).and_then(|j| tokens.get(j)) else { return false };
    let Some(ty) = i.checked_sub(2).and_then(|j| tokens.get(j)) else { return false };
    colons.text == "::"
        && matches!(
            ty.text.as_str(),
            "Vec" | "VecDeque" | "Box" | "String" | "BTreeMap" | "BTreeSet" | "HashMap"
                | "HashSet" | "Rc" | "Arc"
        )
}

/// Whether the `std` two tokens back makes `t` part of a `std::time` path.
fn is_path_seg(tokens: &[Token], i: usize, root: &str) -> bool {
    i >= 2 && tokens[i - 1].text == "::" && tokens[i - 2].is_ident(root)
}

/// Whether the path continues `::<seg>` after token `i`.
fn next_seg_is(tokens: &[Token], i: usize, seg: &str) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.text == "::")
        && tokens.get(i + 2).is_some_and(|t| t.is_ident(seg))
}

/// Whether an `f32`/`f64` ident is an `as` cast target or generic turbofish
/// used for *display-only* conversion — still flagged in accounting modules;
/// this hook exists so the policy is explicit and testable. Currently only
/// exempts `size_of::<f64>()`-style metadata queries.
fn is_cast_suffix_context(tokens: &[Token], i: usize) -> bool {
    // `size_of::<f64>` / `align_of::<f64>`
    i >= 3
        && tokens[i - 1].text == "<"
        && tokens[i - 2].text == "::"
        && tokens
            .get(i - 3)
            .is_some_and(|t| t.is_ident("size_of") || t.is_ident("align_of"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest_all(path: &str) -> Manifest {
        Manifest::parse(&format!(
            "[panic_free]\nmodules = [\"{path}\"]\n[index_free]\nmodules = [\"{path}\"]\n[accounting]\nmodules = [\"{path}\"]\n"
        ))
        .expect("manifest parses")
    }

    fn run(src: &str) -> Vec<String> {
        let m = manifest_all("a.rs");
        check_file("a.rs", src, &m).iter().map(|d| d.render()).collect()
    }

    #[test]
    fn unwrap_flagged_only_outside_tests() {
        let out = run("fn f(x: Option<u8>) -> u8 { x.unwrap() }\n#[cfg(test)]\nmod t { fn g(x: Option<u8>) { x.unwrap(); } }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("P-UNWRAP"));
        assert!(out[0].starts_with("a.rs:1:"));
    }

    #[test]
    fn unwrap_or_not_flagged() {
        assert!(run("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }").is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let out = run("fn f(x: Option<u8>) -> u8 { x.unwrap() } // mmr-lint: allow(P-UNWRAP, reason=\"test scaffold\")");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn standalone_allow_covers_next_line() {
        let out = run("// mmr-lint: allow(P-UNWRAP, reason=\"demo\")\nfn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn allow_without_reason_is_l_reason() {
        let out = run("fn f(x: Option<u8>) -> u8 { x.unwrap() } // mmr-lint: allow(P-UNWRAP)");
        assert!(out.iter().any(|d| d.contains("L-REASON")), "{out:?}");
        assert!(out.iter().any(|d| d.contains("P-UNWRAP")), "{out:?}");
    }

    #[test]
    fn stale_allow_is_l_unused() {
        let out = run("fn f() {} // mmr-lint: allow(P-UNWRAP, reason=\"gone\")");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("L-UNUSED"));
    }

    #[test]
    fn hot_function_allocation_flagged() {
        let src = "// mmr-lint: hot\nfn step(&mut self) { let v = Vec::new(); self.buf.push(1); }\nfn cold(&mut self) { let v = Vec::new(); }";
        let out = run(src);
        assert!(out.iter().any(|d| d.contains("A-ALLOC") && d.contains(":2:")), "{out:?}");
        assert!(out.iter().any(|d| d.contains("A-PUSH") && d.contains(":2:")), "{out:?}");
        assert!(!out.iter().any(|d| d.contains(":3:")), "{out:?}");
    }

    #[test]
    fn indexing_heuristic() {
        let out = run("fn f(xs: &[u8], i: usize) -> u8 { xs[i] }");
        assert!(out.iter().any(|d| d.contains("P-INDEX")), "{out:?}");
        // Attribute and array-type brackets are not index expressions.
        let out = run("#[derive(Clone)]\nstruct S { a: [u8; 4] }");
        assert!(!out.iter().any(|d| d.contains("P-INDEX")), "{out:?}");
    }

    #[test]
    fn float_in_accounting() {
        let out = run("fn f() -> f64 { 1.5 }");
        assert!(out.iter().any(|d| d.contains("D-FLOAT") && d.contains("f64")), "{out:?}");
        assert!(out.iter().any(|d| d.contains("D-FLOAT") && d.contains("1.5")), "{out:?}");
    }

    #[test]
    fn hash_and_time_and_rng() {
        let out = run("use std::collections::HashMap;\nfn f() { let t = std::time::Instant::now(); }\nfn g() { let r = thread_rng(); }");
        assert!(out.iter().any(|d| d.contains("D-HASH")), "{out:?}");
        assert!(out.iter().any(|d| d.contains("D-TIME")), "{out:?}");
        assert!(out.iter().any(|d| d.contains("D-RNG")), "{out:?}");
    }

    #[test]
    fn duration_alone_is_not_flagged() {
        let out = run("use std::time::Duration;\nfn f(d: Duration) {}");
        assert!(!out.iter().any(|d| d.contains("D-TIME")), "{out:?}");
    }

    #[test]
    fn debug_assert_is_fine_but_assert_is_not() {
        let out = run("fn f(x: u8) { debug_assert!(x > 0); assert!(x > 0); }");
        let panics: Vec<_> = out.iter().filter(|d| d.contains("P-PANIC")).collect();
        assert_eq!(panics.len(), 1, "{out:?}");
    }

    #[test]
    fn trigger_words_in_strings_and_comments_ignored() {
        let out = run("// HashMap unwrap panic!\nfn f() { let s = \"Instant::now() .unwrap()\"; }");
        assert!(out.is_empty(), "{out:?}");
    }

    // --- v2: D-ITER ------------------------------------------------------

    fn run_iter(src: &str) -> Vec<String> {
        let m = Manifest::parse("[deterministic]\niter_strict = [\"a.rs\"]").expect("manifest");
        check_file("a.rs", src, &m).iter().map(|d| d.render()).collect()
    }

    #[test]
    fn hash_iteration_is_d_iter() {
        let out = run_iter("fn f(m: &HashMap<u32, u32>) { for (k, v) in m.iter() { use_it(k, v); } }");
        assert!(out.iter().any(|d| d.contains("D-ITER") && d.contains("`m`")), "{out:?}");
        let out = run_iter("fn g() { let mut s = HashSet::new(); for x in s { touch(x); } }");
        assert!(out.iter().any(|d| d.contains("D-ITER") && d.contains("for loop")), "{out:?}");
    }

    #[test]
    fn btree_iteration_is_not_d_iter() {
        let out = run_iter("fn f(m: &BTreeMap<u32, u32>) { for (k, v) in m.iter() { use_it(k, v); } }");
        assert!(!out.iter().any(|d| d.contains("D-ITER")), "{out:?}");
    }

    #[test]
    fn hashy_name_in_one_fn_does_not_taint_another_fn() {
        let out = run_iter(
            "fn f() { let mut m = HashMap::new(); for k in m.keys() { touch(k); } }\n\
             fn g() { let mut m = BTreeMap::new(); for k in m.keys() { touch(k); } }",
        );
        let iter: Vec<_> = out.iter().filter(|d| d.contains("D-ITER")).collect();
        assert_eq!(iter.len(), 1, "{out:?}");
        assert!(iter[0].starts_with("a.rs:1:"), "{out:?}");
    }

    #[test]
    fn file_scope_hashy_binding_taints_all_fns() {
        let out = run_iter(
            "struct S { m: HashMap<u32, u32> }\n\
             fn f(s: &S) { for k in s.m.keys() { touch(k); } }",
        );
        assert!(out.iter().any(|d| d.contains("D-ITER")), "{out:?}");
    }

    #[test]
    fn hash_iteration_outside_strict_crates_is_only_d_hash() {
        let m = Manifest::default();
        let out: Vec<String> =
            check_file("a.rs", "fn f(m: &HashMap<u32, u32>) { for k in m.keys() { touch(k); } }", &m)
                .iter()
                .map(|d| d.render())
                .collect();
        assert!(!out.iter().any(|d| d.contains("D-ITER")), "{out:?}");
        assert!(out.iter().any(|d| d.contains("D-HASH")), "{out:?}");
    }

    // --- v2: S-SHARD (direct) --------------------------------------------

    fn run_shard(src: &str) -> Vec<String> {
        let m = Manifest::parse("[shard_safe]\nmodules = [\"a.rs\"]").expect("manifest");
        check_file("a.rs", src, &m).iter().map(|d| d.render()).collect()
    }

    #[test]
    fn shard_unsafe_constructs_flagged() {
        assert!(run_shard("static mut COUNTER: u32 = 0;").iter().any(|d| d.contains("S-SHARD")));
        assert!(run_shard("use std::rc::Rc;").iter().any(|d| d.contains("S-SHARD")));
        assert!(run_shard("fn f(p: *mut u8) {}").iter().any(|d| d.contains("S-SHARD")));
        assert!(run_shard("thread_local! { static X: u32 = 0; }")
            .iter()
            .any(|d| d.contains("S-SHARD")));
    }

    #[test]
    fn shard_rules_only_in_designated_modules() {
        let m = Manifest::parse("[shard_safe]\nmodules = [\"b.rs\"]").expect("manifest");
        let out = check_file("a.rs", "use std::rc::Rc;", &m);
        assert!(out.is_empty(), "{out:?}");
    }

    // --- v2: transitive rules --------------------------------------------

    #[test]
    fn hot_fn_transitive_allocation_is_a_trans() {
        let out = run(
            "// mmr-lint: hot\nfn step() { helper(); }\nfn helper() { deeper(); }\nfn deeper() { let v = Vec::new(); }",
        );
        let chain: Vec<&String> = out.iter().filter(|d| d.contains("A-TRANS")).collect();
        assert_eq!(chain.len(), 1, "{out:?}");
        assert!(chain[0].starts_with("a.rs:2:"), "{chain:?}");
        assert!(chain[0].contains("step -> helper -> deeper"), "{chain:?}");
    }

    #[test]
    fn p_trans_reports_cross_file_chains() {
        let m = Manifest::parse("[panic_free]\nmodules = [\"router.rs\"]").expect("manifest");
        let a = analyze_file("router.rs", "fn step(x: Option<u8>) -> u8 { decode(x) }", &m);
        let b = analyze_file("util.rs", "fn decode(x: Option<u8>) -> u8 { x.unwrap() }", &m);
        let (diags, _) = finalize(vec![a, b], &m);
        let out: Vec<String> = diags.iter().map(|d| d.render()).collect();
        assert!(
            out.iter().any(|d| d.contains("P-TRANS")
                && d.starts_with("router.rs:1:")
                && d.contains("step -> decode")),
            "{out:?}"
        );
    }

    #[test]
    fn leaf_allow_exempts_the_chain_and_counts_as_used() {
        let m = Manifest::parse("[panic_free]\nmodules = [\"router.rs\"]").expect("manifest");
        let a = analyze_file("router.rs", "fn step(x: Option<u8>) -> u8 { decode(x) }", &m);
        let b = analyze_file(
            "util.rs",
            "fn decode(x: Option<u8>) -> u8 { x.unwrap() } // mmr-lint: allow(P-UNWRAP, reason=\"caller validates\")",
            &m,
        );
        let (diags, _) = finalize(vec![a, b], &m);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn callees_in_panic_free_files_are_not_re_reported() {
        // Both files designated: the callee's own direct P-UNWRAP covers it;
        // no chain is reported on top.
        let m =
            Manifest::parse("[panic_free]\nmodules = [\"router.rs\", \"util.rs\"]").expect("m");
        let a = analyze_file("router.rs", "fn step(x: Option<u8>) -> u8 { decode(x) }", &m);
        let b = analyze_file("util.rs", "fn decode(x: Option<u8>) -> u8 { x.unwrap() }", &m);
        let (diags, _) = finalize(vec![a, b], &m);
        let out: Vec<String> = diags.iter().map(|d| d.render()).collect();
        assert!(!out.iter().any(|d| d.contains("P-TRANS")), "{out:?}");
        assert!(out.iter().any(|d| d.contains("P-UNWRAP")), "{out:?}");
    }

    #[test]
    fn s_shard_transitive_chain() {
        let m = Manifest::parse("[shard_safe]\nmodules = [\"router.rs\"]").expect("manifest");
        let a = analyze_file("router.rs", "fn step() { helper(); }", &m);
        let b = analyze_file("util.rs", "fn helper() { let c = RefCell::new(0); }", &m);
        let (diags, _) = finalize(vec![a, b], &m);
        let out: Vec<String> = diags.iter().map(|d| d.render()).collect();
        assert!(
            out.iter().any(|d| d.contains("S-SHARD") && d.contains("step -> helper")),
            "{out:?}"
        );
    }
}
