//! `lint.toml` — the machine-readable manifest that designates which
//! modules each rule family applies to.
//!
//! The format is a deliberately tiny TOML subset (tables of string-array
//! keys), parsed by hand so the linter stays free of registry dependencies.
//! Paths are workspace-relative prefixes: a designation of
//! `"crates/core/src/linksched.rs"` covers that file, and
//! `"crates/net/src"` covers the whole directory.
//!
//! Sections:
//!
//! ```toml
//! [paths]
//! exclude = ["vendor", "target"]        # never linted at all
//!
//! [deterministic]                        # D-HASH / D-RNG scope is global;
//! time_exempt = ["crates/bench"]         # D-TIME applies outside these
//! iter_strict = ["crates/sim"]           # D-ITER: hash-order iteration taint
//!
//! [accounting]                           # D-FLOAT: integer-ledger modules
//! modules = ["crates/core/src/llr.rs"]
//!
//! [panic_free]                           # P-UNWRAP / P-EXPECT / P-PANIC,
//! modules = ["crates/core/src/router.rs"]  # plus P-TRANS roots
//!
//! [index_free]                           # P-INDEX (stricter, opt-in)
//! modules = ["crates/core/src/llr.rs"]
//!
//! [shard_safe]                           # S-SHARD: the router-step path
//! modules = ["crates/core/src/router.rs"]
//! ```
//!
//! A-lints need no section: the direct rules trigger only inside functions
//! annotated `// mmr-lint: hot`, wherever those live (and A-TRANS follows
//! the call graph out of them).

use std::fmt;
use std::path::Path;

/// Parsed manifest.
#[derive(Debug, Default, Clone)]
pub struct Manifest {
    /// Path prefixes excluded from linting entirely.
    pub exclude: Vec<String>,
    /// Path prefixes where `std::time` use is legitimate (benchmarks).
    pub time_exempt: Vec<String>,
    /// Order-strict crates where hash-order iteration is flagged (D-ITER).
    pub iter_strict: Vec<String>,
    /// Integer-ledger accounting modules (D-FLOAT scope).
    pub accounting: Vec<String>,
    /// Hot-path modules that must not panic (P-UNWRAP/P-EXPECT/P-PANIC
    /// directly; P-TRANS transitively through first-party callees).
    pub panic_free: Vec<String>,
    /// Modules that must not use bare slice indexing (P-INDEX).
    pub index_free: Vec<String>,
    /// The router-step path designated for the sharding refactor: no
    /// `static mut`, `thread_local!`, `Rc`/`RefCell`/`Cell`, or raw-pointer
    /// types, directly or transitively (S-SHARD).
    pub shard_safe: Vec<String>,
}

/// Manifest syntax error with a line number.
#[derive(Debug)]
pub struct ManifestError {
    /// 1-based line of the offending manifest entry.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ManifestError {}

impl Manifest {
    /// Parses the TOML-subset text. Unknown sections and keys are errors:
    /// a typo in the manifest must not silently un-designate a module.
    pub fn parse(src: &str) -> Result<Manifest, ManifestError> {
        let mut m = Manifest::default();
        let mut section = String::new();
        let mut lines = src.lines().enumerate();
        while let Some((idx, raw)) = lines.next() {
            let line_no = idx as u32 + 1;
            let mut line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            // Multi-line arrays: keep consuming until the closing bracket.
            if line.contains('[') && line.contains('=') && !line.contains(']') {
                for (_, cont) in lines.by_ref() {
                    let cont = strip_comment(cont).trim().to_string();
                    let done = cont.contains(']');
                    line.push_str(&cont);
                    if done {
                        break;
                    }
                }
            }
            let line = line.as_str();
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                match section.as_str() {
                    "paths" | "deterministic" | "accounting" | "panic_free" | "index_free"
                    | "shard_safe" => {}
                    other => {
                        return Err(ManifestError {
                            line: line_no,
                            message: format!("unknown section [{other}]"),
                        })
                    }
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ManifestError {
                    line: line_no,
                    message: format!("expected `key = [..]`, got `{line}`"),
                });
            };
            let key = key.trim();
            let values = parse_string_array(value.trim()).ok_or_else(|| ManifestError {
                line: line_no,
                message: format!("value for `{key}` must be an array of strings on one line"),
            })?;
            let target = match (section.as_str(), key) {
                ("paths", "exclude") => &mut m.exclude,
                ("deterministic", "time_exempt") => &mut m.time_exempt,
                ("deterministic", "iter_strict") => &mut m.iter_strict,
                ("accounting", "modules") => &mut m.accounting,
                ("panic_free", "modules") => &mut m.panic_free,
                ("index_free", "modules") => &mut m.index_free,
                ("shard_safe", "modules") => &mut m.shard_safe,
                _ => {
                    return Err(ManifestError {
                        line: line_no,
                        message: format!("unknown key `{key}` in section [{section}]"),
                    })
                }
            };
            target.extend(values);
        }
        Ok(m)
    }

    /// Whether `path` (workspace-relative, `/`-separated) is excluded.
    pub fn is_excluded(&self, path: &str) -> bool {
        matches_any(path, &self.exclude)
    }

    /// Whether `path` may legitimately read wall-clock time (D-TIME off).
    pub fn is_time_exempt(&self, path: &str) -> bool {
        matches_any(path, &self.time_exempt)
    }

    /// Whether `path` is an integer-ledger accounting module (D-FLOAT on).
    pub fn is_accounting(&self, path: &str) -> bool {
        matches_any(path, &self.accounting)
    }

    /// Whether `path` is a designated panic-free module (P-lints on).
    pub fn is_panic_free(&self, path: &str) -> bool {
        matches_any(path, &self.panic_free)
    }

    /// Whether `path` must avoid bare slice indexing (P-INDEX on).
    pub fn is_index_free(&self, path: &str) -> bool {
        matches_any(path, &self.index_free)
    }

    /// Whether `path` is in an order-strict crate (D-ITER on).
    pub fn is_iter_strict(&self, path: &str) -> bool {
        matches_any(path, &self.iter_strict)
    }

    /// Whether `path` is on the shard-safe router-step path (S-SHARD on).
    pub fn is_shard_safe(&self, path: &str) -> bool {
        matches_any(path, &self.shard_safe)
    }
}

/// Prefix match on `/`-separated path components: `crates/net/src` covers
/// `crates/net/src/setup.rs` but not `crates/net/src2/x.rs`.
fn matches_any(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| {
        path == p || (path.starts_with(p.as_str()) && path.as_bytes().get(p.len()) == Some(&b'/'))
    })
}

/// Normalizes an OS path to the `/`-separated workspace-relative form the
/// manifest uses.
pub fn normalize(path: &Path) -> String {
    path.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn strip_comment(line: &str) -> &str {
    // Good enough for this subset: `#` inside quotes would break this, but
    // manifest paths never contain `#` and parse_string_array re-validates.
    match line.find('#') {
        Some(i) if line[..i].matches('"').count().is_multiple_of(2) => &line[..i],
        _ => line,
    }
}

/// Parses `["a", "b"]` (single-line). Returns None on any malformation.
fn parse_string_array(s: &str) -> Option<Vec<String>> {
    let inner = s.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let unquoted = part.strip_prefix('"')?.strip_suffix('"')?;
        if unquoted.contains('"') {
            return None;
        }
        out.push(unquoted.to_string());
    }
    Some(out)
}

fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_sections() {
        let m = Manifest::parse(
            r#"
# comment
[paths]
exclude = ["vendor", "target"]

[deterministic]
time_exempt = ["crates/bench"]
iter_strict = ["crates/sim"]

[accounting]
modules = ["crates/core/src/llr.rs"]

[panic_free]
modules = ["crates/core/src/router.rs", "crates/net/src/setup.rs"]

[index_free]
modules = ["crates/core/src/llr.rs"]

[shard_safe]
modules = ["crates/core/src/router.rs"]
"#,
        )
        .expect("parses");
        assert!(m.is_excluded("vendor/proptest/src/lib.rs"));
        assert!(!m.is_excluded("vendors/x.rs"));
        assert!(m.is_time_exempt("crates/bench/src/bin/sweepbench.rs"));
        assert!(m.is_iter_strict("crates/sim/src/stats.rs"));
        assert!(!m.is_iter_strict("crates/core/src/router.rs"));
        assert!(m.is_accounting("crates/core/src/llr.rs"));
        assert!(m.is_panic_free("crates/net/src/setup.rs"));
        assert!(!m.is_panic_free("crates/net/src/driver.rs"));
        assert!(m.is_shard_safe("crates/core/src/router.rs"));
        assert!(!m.is_shard_safe("crates/net/src/network.rs"));
    }

    #[test]
    fn multi_line_arrays_parse() {
        let m = Manifest::parse(
            "[panic_free]\nmodules = [\n    \"crates/a.rs\", # trailing comment\n    \"crates/b.rs\",\n]\n",
        )
        .expect("parses");
        assert!(m.is_panic_free("crates/a.rs"));
        assert!(m.is_panic_free("crates/b.rs"));
    }

    #[test]
    fn unknown_section_is_an_error() {
        assert!(Manifest::parse("[panicfree]\nmodules = []").is_err());
        assert!(Manifest::parse("[paths]\nincl = []").is_err());
        assert!(Manifest::parse("[paths]\nexclude = vendor").is_err());
    }

    #[test]
    fn prefix_matching_is_component_wise() {
        let m = Manifest::parse("[panic_free]\nmodules = [\"crates/net/src\"]").expect("parses");
        assert!(m.is_panic_free("crates/net/src/setup.rs"));
        assert!(m.is_panic_free("crates/net/src"));
        assert!(!m.is_panic_free("crates/net/src2/x.rs"));
    }
}
